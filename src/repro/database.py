"""The DBMS facade: an embedded AIM-II.

::

    from repro import Database

    db = Database()                      # in-memory; pass path= for a file
    db.execute(\"\"\"CREATE TABLE DEPARTMENTS (
        DNO INT, MGRNO INT,
        PROJECTS TABLE OF (PNO INT, PNAME STRING,
                           MEMBERS TABLE OF (EMPNO INT, FUNCTION STRING)),
        BUDGET INT,
        EQUIP TABLE OF (QU INT, TYPE STRING))\"\"\")
    db.insert("DEPARTMENTS", {...})      # nested plain data
    result = db.query(\"\"\"SELECT x.DNO FROM x IN DEPARTMENTS
                          WHERE EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'\"\"\")

The facade implements the executor's :class:`TableProvider` protocol, owns
the buffer manager (whose counters benchmarks read), maintains indexes on
every DML path, and exposes tuple names and temporal ASOF support.
"""

from __future__ import annotations

import datetime
import os
import threading
import time
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Optional, Union

from repro.catalog.catalog import Catalog, TableEntry
from repro.concurrency.locks import LockManager, LockMode
from repro.errors import (
    AccessPathError,
    DataError,
    ExecutionError,
    QueryError,
    SerializationError,
    StorageError as StorageError_,
    TemporalError,
    UnknownTableError,
)
from repro.index.addresses import AddressingMode
from repro.index.manager import FlatIndex, IndexDefinition, NF2Index
from repro.index.text import TextIndex
from repro.mvcc import gc as _mvcc_gc
from repro.mvcc import read as _mvcc_read
from repro.mvcc.snapshot import AXIS_TIME, MvccManager, Snapshot
from repro.mvcc.store import MvccStore
from repro.model.ddl import parse_create_table
from repro.model.schema import TableSchema
from repro.model.values import TableValue, TupleValue
from repro.names.tuple_names import TupleName, TupleNameService
from repro.obs import METRICS, Span, TRACER, WAITS
from repro.obs.ash import ActiveSessionHistory
from repro.obs.metrics import LATENCY_BUCKETS_MS
from repro.obs.querylog import QueryLog, QueryRecord
from repro.obs.slo import SloEngine
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.sysviews import is_sys_table, iterate_sys_view, sys_view_schema
from repro.query import ast
from repro.query.executor import Executor
from repro.query.parser import parse_statement
from repro.query.planner import (
    candidate_roots,
    candidate_roots_first_match,
    extract_condition_groups,
    extract_conditions,
)
from repro.render import render_table
from repro.storage.buffer import BufferManager
from repro.storage.complex_object import ComplexObjectManager, OpenObject
from repro.storage.heap import HeapFile
from repro.storage.minidirectory import StorageStructure
from repro.storage.pagedfile import DiskPagedFile, MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.tid import TID
from repro.temporal.versions import (
    Timestamp,
    VersionStore,
    canonical_timestamp,
    timestamp_axis,
)


class Database:
    """An embedded extended-NF2 DBMS instance.

    Disk-backed databases are durable by default: every statement (or
    explicit :meth:`transaction` scope) commits through a write-ahead log
    (``<path>.wal``), crash recovery replays the log on open, and page
    checksums catch torn writes.  ``wal=False`` restores the paper's
    original "single-user, no recovery component" behaviour where only
    :meth:`save` persists.  See ``docs/DURABILITY.md``.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        buffer_capacity: int = 512,
        structure: StorageStructure = StorageStructure.SS3,
        wal: bool = True,
        wal_auto_checkpoint_bytes: int = 1 << 20,
        page_checksums: bool = True,
        pagedfile=None,
        wal_io=None,
        mvcc: bool = False,
        read_only: bool = False,
    ):
        self._path = path
        #: read-only mode: every mutation path is rejected (replicas open
        #: this way and redo shipped WAL batches through the apply
        #: context instead — see docs/REPLICATION.md)
        self.read_only = read_only
        #: thread-local flag set by replica apply while it installs a
        #: shipped batch — the only writer a read-only database admits
        self._apply_ctx = threading.local()
        #: replication role state: a ReplicationHub when this database
        #: ships its WAL to replicas, a ReplicaState when it tails a
        #: primary, None otherwise (SYS.REPLICAS / SYS.WAL read it)
        self.replication = None
        #: thread-local engine state: per-thread executor + last_plan (so
        #: concurrent sessions don't trample each other's run state) and
        #: the current Session driving this thread, if any
        self._thread_state = threading.local()
        self._session_ctx = threading.local()
        #: hierarchical lock manager (tables + complex objects); sessions
        #: route their statements through it — see docs/CONCURRENCY.md
        self.locks = LockManager()
        #: finished-statement ring + slow-query sink (SYS.QUERIES reads it)
        self.query_log = QueryLog()
        #: active-session-history sampler (SYS.ASH); constructed idle —
        #: call ``db.ash.start()`` to spawn the sampling thread
        self.ash = ActiveSessionHistory(self)
        #: metric time-series recorder (SYS.METRICS_HISTORY); constructed
        #: idle like the ASH sampler — ``db.ts.start()`` spawns the thread
        self.ts = TimeSeriesRecorder(self)
        #: SLO objectives + burn-rate alert state (SYS.SLOS / SYS.ALERTS);
        #: evaluated on the recorder's clock once objectives are defined
        self.slo = SloEngine(self)
        #: live sessions, weakly referenced (SYS.SESSIONS reads it)
        self._sessions: "weakref.WeakSet" = weakref.WeakSet()
        self._sessions_latch = threading.Lock()
        #: serializes mutation scopes against each other and against
        #: checkpoints (a latch, not a lock: never held across lock waits)
        self._write_latch = threading.RLock()
        #: bounded text -> parsed-statement cache; ASTs are immutable and
        #: already shared across threads through the compiled-plan cache,
        #: so repeated statements (pipelined clients, benchmarks) skip
        #: the parser entirely
        self._parse_cache: "OrderedDict[str, ast.Statement]" = OrderedDict()
        self._parse_cache_latch = threading.Lock()
        if pagedfile is not None:
            self._file = pagedfile
        else:
            self._file = DiskPagedFile(path) if path else MemoryPagedFile()
        #: the WAL manager (None: in-memory database or wal=False)
        self.wal = None
        #: what crash recovery did on open (None: nothing to recover)
        self.last_recovery = None
        wal_enabled = wal and path is not None
        if wal_enabled:
            from repro.wal.recovery import recover

            self.last_recovery = recover(self._wal_path, self._file)
        self.buffer = BufferManager(
            self._file,
            capacity=buffer_capacity,
            checksums=bool(path is not None and page_checksums),
        )
        self.catalog = Catalog()
        self.structure = structure
        #: set False to disable index-based access paths (benchmarks use it)
        self.use_access_paths = True
        #: access-path selection strategy: ``"cost"`` (statistics-based,
        #: the default) or ``"first-match"`` (the pre-cost-model baseline,
        #: kept for A/B ablation — see benchmarks/test_ablation_planner.py
        #: and docs/PLANNER.md)
        self.planner_mode = "cost"
        #: execution engine: ``"compiled"`` (statements compile once into
        #: Python closures, flat scans batch into columnar chunks, complex
        #: objects decode lazily — the default; see docs/EXECUTOR.md) or
        #: ``"interpreted"`` (the row-at-a-time AST walker, kept as the
        #: byte-identical A/B baseline).  Overridable per process via the
        #: ``REPRO_EXEC_MODE`` environment variable.
        self.exec_mode = os.environ.get("REPRO_EXEC_MODE", "compiled")
        #: bumped by every DDL statement (CREATE/DROP/ALTER TABLE) —
        #: compiled statement plans are stamped with the epoch they were
        #: built under and recompile when it moves
        self.schema_epoch = 0
        #: logical clock for default timestamps on subtuple-versioned tables
        self._clock = 0.0
        #: active transaction (single-user: at most one)
        self._active_txn: Optional["_Transaction"] = None
        #: MVCC manager (``mvcc=True``): statements of concurrent sessions
        #: read from commit-LSN snapshots without S-locking anything, and
        #: ``session.transaction(isolation="snapshot")`` runs under
        #: snapshot isolation with first-committer-wins conflicts.  None:
        #: the original strict-2PL behaviour.  See docs/CONCURRENCY.md.
        self.mvcc: Optional[MvccManager] = MvccManager() if mvcc else None
        recovered_state = (
            self.last_recovery.catalog_state
            if self.last_recovery is not None
            else None
        )
        # catalog restore rebuilds indexes through the normal write paths;
        # on a read-only replica those are gated, so run the restore under
        # the apply context (it is a replay, not a user mutation)
        self._apply_ctx.active = True
        try:
            self._load_catalog(recovered_state)
        finally:
            self._apply_ctx.active = False
        if wal_enabled:
            from repro.wal.manager import WalManager

            self.wal = WalManager(
                self._wal_path,
                io=wal_io,
                auto_checkpoint_bytes=wal_auto_checkpoint_bytes,
            )
            self.buffer.wal = self.wal
            # A checkpoint right after open truncates the (possibly just
            # replayed) log and establishes a durable baseline.
            self.checkpoint()

    @property
    def _wal_path(self) -> str:
        assert self._path is not None
        return self._path + ".wal"

    def _next_timestamp(self, at: Optional[Timestamp]) -> Timestamp:
        from repro.temporal.versions import canonical_timestamp

        if at is None:
            self._clock += 1.0
            return self._clock
        self._clock = max(self._clock, canonical_timestamp(at))
        return at

    # ======================================================================
    # Concurrency (sessions + hierarchical locking; docs/CONCURRENCY.md)
    # ======================================================================

    @property
    def _executor(self) -> Executor:
        """Per-thread executor — its run state (``last_profile``, caches)
        must not be shared between concurrent sessions."""
        executor = getattr(self._thread_state, "executor", None)
        if executor is None:
            executor = Executor(self)
            self._thread_state.executor = executor
        return executor

    @property
    def last_plan(self):
        """The planner report of this thread's last planned range (see
        docs/PLANNER.md) — thread-local, like the executor."""
        return getattr(self._thread_state, "last_plan", None)

    @last_plan.setter
    def last_plan(self, value) -> None:
        self._thread_state.last_plan = value

    def session(self, name: Optional[str] = None, lock_timeout: Optional[float] = None):
        """A connection for one client thread.

        Statements executed through the returned
        :class:`~repro.concurrency.session.Session` take hierarchical
        locks (table intention locks + per-complex-object S/X keyed by
        root TID), so many sessions can drive one database concurrently;
        ``session.transaction()`` scopes multi-statement atomicity under
        strict two-phase locking.  *lock_timeout* (seconds) bounds every
        lock wait (default: the lock manager's 5 s)."""
        from repro.concurrency.session import Session

        return Session(self, name=name, lock_timeout=lock_timeout)

    def _session(self):
        """The session driving the current thread, if any."""
        return getattr(self._session_ctx, "current", None)

    def _register_session(self, session) -> None:
        with self._sessions_latch:
            self._sessions.add(session)

    def _unregister_session(self, session) -> None:
        with self._sessions_latch:
            self._sessions.discard(session)

    def active_sessions(self) -> list:
        """The open sessions on this database, sorted by name (dead
        references are pruned by the weak set) — backs ``SYS.SESSIONS``."""
        with self._sessions_latch:
            sessions = [s for s in self._sessions if not s._closed]
        return sorted(sessions, key=lambda s: s.name)

    def _lock_table(self, name: str, mode: LockMode) -> None:
        session = self._session()
        if session is not None:
            session.lock(("table", name), mode)

    def _lock_object(self, table: str, tid: TID, mode: LockMode) -> None:
        session = self._session()
        if session is not None:
            session.lock(("object", table, tid), mode)

    def _begin_write(self, entry: TableEntry) -> None:
        """Front door of every DML write path.

        Under a session: serialize on the global writer token (through
        the lock manager, so the wait is deadlock-detectable), lazily
        enter the engine transaction for explicit session transactions,
        and lock the table — ``X`` inside an explicit transaction (its
        rollback is table-granular), ``IX`` for autocommit statements
        (object ``X`` locks follow per touched object).  Then the
        single-user transaction bookkeeping runs exactly as before."""
        self._check_writable()
        session = self._session()
        if session is not None:
            session._before_write()
            if session._explicit is not None:
                self._lock_table(entry.name, LockMode.X)
            else:
                self._lock_table(entry.name, LockMode.IX)
        if self._active_txn is not None:
            self._txn_guard(entry)
            self._active_txn.touch(entry.name)

    def _check_writable(self) -> None:
        """Reject mutations on a read-only replica.  The replica's apply
        thread (installing a shipped commit batch) sets the thread-local
        apply context and passes; everything else must write on the
        primary — or PROMOTE this database first."""
        if self.read_only and not getattr(self._apply_ctx, "active", False):
            raise ExecutionError(
                "read-only replica: this database tails a primary's WAL; "
                "run writes on the primary, or PROMOTE the replica to "
                "take over"
            )

    # ======================================================================
    # Durability (WAL commit scope + checkpointing)
    # ======================================================================

    @contextmanager
    def _wal_scope(self):
        """An auto-commit WAL transaction around one mutating operation.

        No-op when the database has no WAL or when a transaction (explicit
        or an enclosing operation) is already open — nested mutations ride
        on the outer commit.  On success the dirtied pages and a catalog
        snapshot are logged and fsynced before control returns (the commit
        acknowledgement).  On failure the scope converts to an aborted
        transaction and immediately commits the *current* in-memory state
        under a successor, so the durable state converges with memory; a
        crash in between recovers to the pre-operation state.

        Concurrency: under a session the global writer token is taken
        first (through the lock manager — deadlock-detectable), then the
        write latch serializes this scope against non-session writer
        threads and checkpoints.  The latch is re-entrant, so nested
        scopes and auto-checkpoints ride through.
        """
        self._check_writable()
        session = self._session()
        if session is not None:
            session._before_write()
        with self._write_latch:
            if self.mvcc is not None:
                yield from self._mvcc_wal_scope(session)
            else:
                yield from self._wal_scope_inner()

    def _mvcc_wal_scope(self, session):
        """MVCC bracket around one write scope: versions created inside it
        stay pending (invisible to other snapshots, visible to the writer
        through its snapshot's txn tag) until the depth-0 ``end_scope``
        stamps them with the next commit sequence number.  Opportunistic
        version GC rides on the outermost scope, inside the WAL
        transaction so its page mutations are logged."""
        manager = self.mvcc
        snapshot = session._snapshot if session is not None else None
        manager.begin_scope(snapshot)
        outermost = manager.scope_depth() == 1
        try:
            on_begin = (lambda: _mvcc_gc.collect(self)) if outermost else None
            yield from self._wal_scope_inner(on_begin=on_begin)
        finally:
            manager.end_scope(
                self.wal.last_commit_lsn if self.wal is not None else None
            )

    def _wal_scope_inner(self, on_begin=None):
        wal = self.wal
        if wal is None:
            if on_begin is not None:
                on_begin()
            yield
            return
        if wal.failure is not None:
            # a poisoned WAL (its commit path crashed earlier) must not let
            # mutations through, even while a stale transaction flag from
            # the failed commit is still set
            raise wal.failure
        if wal.in_txn:
            yield
            return
        wal.begin()
        if on_begin is not None:
            on_begin()
        try:
            yield
        except BaseException:
            try:
                wal.convert_abort()
                wal.log_commit(self._catalog_state(), self.buffer.image_for_log)
            except Exception as wal_exc:
                # the WAL itself failed (e.g. injected crash): poison it so
                # no later mutation slips past a log that stopped
                # recording; the original error matters more here
                wal.poison(wal_exc)
            raise
        try:
            needs_checkpoint = wal.log_commit(
                self._catalog_state(), self.buffer.image_for_log
            )
        except BaseException as exc:
            wal.poison(exc)
            raise
        if needs_checkpoint:
            if METRICS.enabled:
                METRICS.inc("wal.auto_checkpoints")
            self.checkpoint()

    def checkpoint(self) -> None:
        """Flush all dirty pages, sync the data file, write the catalog
        sidecar, and truncate the WAL to a single checkpoint record.

        Runs automatically when the log outgrows
        ``wal_auto_checkpoint_bytes``; the shell exposes ``.checkpoint``.
        """
        if self.wal is None:
            raise StorageError_(
                "checkpoint requires a WAL-enabled disk database"
            )
        with self._write_latch:  # not concurrent with mutation scopes
            if self.wal.in_txn:
                from repro.errors import WalError

                raise WalError("cannot checkpoint inside a transaction")
            state = self._catalog_state()
            if self.wal.protected_pages:
                # stray unlogged changes (e.g. direct OpenObject mutation):
                # fold them into a commit so the flush below is WAL-covered
                self.wal.begin()
                self.wal.log_commit(state, self.buffer.image_for_log)
                state = self._catalog_state()
            self.buffer.flush_all()
            self.wal.checkpoint(state)
            self._write_catalog_sidecar(state)

    # ======================================================================
    # DDL
    # ======================================================================

    def create_table(
        self,
        definition: Union[str, TableSchema],
        versioned: bool = False,
        versioning: str = "object",
    ) -> TableSchema:
        """Create a table from DDL text or a schema object.

        ``versioned=True`` enables temporal support; ``versioning`` picks
        the strategy: ``"object"`` (copy-on-write version chains) or
        ``"subtuple"`` (the paper's subtuple-manager versioning, NF2
        tables only).
        """
        schema = (
            parse_create_table(definition) if isinstance(definition, str) else definition
        )
        if versioning not in ("object", "subtuple"):
            raise TemporalError(f"unknown versioning strategy {versioning!r}")
        self._lock_table(schema.name, LockMode.X)  # DDL: absolute table lock
        with self._wal_scope():
            return self._create_table_entry(schema, versioned, versioning)

    def _create_table_entry(
        self, schema: TableSchema, versioned: bool, versioning: str
    ) -> TableSchema:
        segment = Segment(self.buffer, name=schema.name)
        entry = TableEntry(
            schema=schema,
            segment=segment,
            versioned=versioned,
            versioning=versioning if versioned else None,
        )
        if versioned and versioning == "subtuple":
            if schema.is_flat:
                raise TemporalError(
                    "subtuple versioning applies to NF2 tables; use "
                    "versioning='object' for flat tables"
                )
            from repro.temporal.subtuple_versions import TemporalObjectManager

            entry.temporal_manager = TemporalObjectManager(segment, self.structure)
            entry.manager = entry.temporal_manager._base
        elif schema.is_flat:
            entry.heap = HeapFile(segment, schema)
        else:
            entry.manager = ComplexObjectManager(segment, self.structure)
        if versioned and versioning == "object":
            entry.version_store = VersionStore()
        self._bootstrap_mvcc(entry)
        self.catalog.add_table(entry)
        self.schema_epoch += 1  # invalidate compiled statement plans
        return schema

    def _bootstrap_mvcc(self, entry: TableEntry) -> None:
        """Attach an MVCC store to *entry* and seed its current rows as
        committed-since-0.  Subtuple-versioned tables are excluded: their
        manager mutates version chains in place, so there is no stable
        per-version root TID to hang visibility on (they stay under 2PL
        even when ``mvcc=True``)."""
        if self.mvcc is None or entry.temporal_manager is not None:
            return
        store = MvccStore(self.mvcc, entry)
        store.bootstrap(iter(entry.tids))
        entry.mvcc = store

    @staticmethod
    def _reject_sys_write(name: str) -> None:
        """DML/DDL against the virtual SYS catalog is meaningless — its
        rows are computed from engine state at read time."""
        if is_sys_table(name):
            raise ExecutionError(f"{name} is a read-only system view")

    def drop_table(self, name: str) -> None:
        self._reject_sys_write(name)
        self._lock_table(name, LockMode.X)
        with self._wal_scope():
            entry = self.catalog.drop_table(name)
            self.schema_epoch += 1  # invalidate compiled statement plans
            if self.mvcc is not None and entry.mvcc is not None:
                self.mvcc.forget_table(entry.mvcc)

    def create_index(
        self,
        name: str,
        table: str,
        attribute_path: Union[str, tuple[str, ...]],
        mode: AddressingMode = AddressingMode.HIERARCHICAL,
        current_only: bool = False,
    ) -> None:
        """Create a value index; existing rows are indexed immediately.

        *current_only* restricts the flat build to the table's current
        TID list instead of a full heap scan.  Replica apply needs this:
        a primary running MVCC leaves dead (superseded) versions in the
        heap until GC, and the non-MVCC replica has no visibility filter
        to screen them out of a scan-built index.
        """
        self._reject_sys_write(table)
        entry = self.catalog.table(table)
        path = _as_path(attribute_path)
        definition = IndexDefinition(name=name, table=table, attribute_path=path, mode=mode)
        definition.validate_against(entry.schema)
        self._lock_table(table, LockMode.X)  # index build scans the table
        with self._wal_scope():
            if entry.is_flat:
                index: Union[FlatIndex, NF2Index] = FlatIndex(definition)
                self.catalog.add_index(table, name, index)
                heap = entry.heap
                rows = (
                    ((tid, heap.fetch(tid)) for tid in entry.tids)  # type: ignore[union-attr]
                    if current_only
                    else heap.scan()  # type: ignore[union-attr]
                )
                for tid, row in rows:
                    index.index_row(tid, row[path[0]])
            else:
                index = NF2Index(definition)
                self.catalog.add_index(table, name, index)
                for tid in entry.tids:
                    index.index_object(entry.manager.open(tid, entry.schema))  # type: ignore[union-attr]

    def create_text_index(
        self,
        name: str,
        table: str,
        attribute_path: Union[str, tuple[str, ...]],
        fragment_length: int = 3,
    ) -> None:
        self._reject_sys_write(table)
        entry = self.catalog.table(table)
        if entry.is_flat:
            raise AccessPathError(
                "text indexes are defined on NF2 tables in this prototype"
            )
        path = _as_path(attribute_path)
        definition = IndexDefinition(name=name, table=table, attribute_path=path)
        index = TextIndex(definition, fragment_length=fragment_length)
        index.validate_against(entry.schema)
        self._lock_table(table, LockMode.X)  # index build scans the table
        with self._wal_scope():
            self.catalog.add_index(table, name, index)
            for tid in entry.tids:
                index.index_object(entry.manager.open(tid, entry.schema))  # type: ignore[union-attr]

    def drop_index(self, name: str) -> None:
        if self._session() is not None:
            self._lock_table(self.catalog.index_owner(name), LockMode.X)
        with self._wal_scope():
            self.catalog.drop_index(name)

    def alter_table(
        self,
        table: str,
        action: str,
        attribute_path: Union[str, tuple[str, ...]],
        payload: Optional[str] = None,
        default: Any = None,
    ) -> TableSchema:
        """Schema evolution (offline migration; the paper lists schema
        changes as future research).

        * ``action='add'`` — *attribute_path* names the new atomic
          attribute (dotted for nested levels), *payload* its type name,
          *default* the value backfilled into existing tuples;
        * ``action='drop'`` / ``action='rename'`` — *attribute_path* names
          the victim; for rename, *payload* is the new name.

        Existing objects are rewritten under the new schema.  Versioned
        tables are rejected (their history carries the old schema), and so
        are drops/renames of indexed attributes.
        """
        from repro.model import evolution
        from repro.model.schema import atomic as make_atomic
        from repro.model.types import AtomicType

        self._reject_sys_write(table)
        entry = self.catalog.table(table)
        if entry.versioned:
            raise ExecutionError(
                "ALTER TABLE on versioned tables is not supported (the "
                "history was stored under the old schema)"
            )
        path = _as_path(attribute_path)
        old_schema = entry.schema
        if action == "add":
            if payload is None:
                raise ExecutionError("ADD needs a type name")
            new_attr = make_atomic(path[-1], AtomicType.parse(payload))
            if default is not None:
                default = new_attr.atomic_type.validate(default)  # type: ignore[union-attr]
            new_schema = evolution.add_attribute(old_schema, path[:-1], new_attr)
            migrate = lambda row: evolution.add_value(row, path[:-1], path[-1], default)
        elif action == "drop":
            self._check_not_indexed(entry, path)
            new_schema = evolution.drop_attribute(old_schema, path)
            migrate = lambda row: evolution.drop_value(row, path)
        elif action == "rename":
            if payload is None:
                raise ExecutionError("RENAME needs a new attribute name")
            self._check_not_indexed(entry, path)
            new_schema = evolution.rename_attribute(old_schema, path, payload)
            migrate = lambda row: evolution.rename_value(row, path, payload)
        else:
            raise ExecutionError(f"unknown ALTER action {action!r}")

        if entry.is_flat != new_schema.is_flat:
            raise ExecutionError(
                "ALTER may not change a table between flat and nested"
            )
        # Rewrite every stored tuple under the new schema (one WAL commit:
        # a crash mid-migration recovers to the pre-ALTER table).
        self._lock_table(table, LockMode.X)  # offline migration
        with self._wal_scope():
            rows = [self._fetch(entry, tid).to_plain() for tid in entry.tids]
            for tid in list(entry.tids):
                self.delete(table, tid)
            if entry.mvcc is not None:
                # the retained version history was stored under the old
                # schema and can no longer be decoded — release it now,
                # while the old schema is still installed
                self._purge_mvcc_history(entry)
            entry.schema = new_schema
            self.schema_epoch += 1  # invalidate compiled statement plans
            if entry.is_flat:
                entry.heap.schema = new_schema  # type: ignore[union-attr]
            for row in rows:
                self.insert(table, migrate(row))
        # Re-anchor index definitions whose paths contain a renamed step.
        return new_schema

    @staticmethod
    def _check_not_indexed(entry: TableEntry, path: tuple[str, ...]) -> None:
        for index in entry.indexes.values():
            index_path = index.definition.attribute_path
            if index_path[: len(path)] == path or path[: len(index_path)] == index_path:
                raise ExecutionError(
                    f"attribute {'.'.join(path)} is covered by index "
                    f"{index.definition.name!r}; drop the index first"
                )

    # -- temporal access below the language (walk-through-time) ----------------

    def history(self, table: str, tid: TID) -> list[tuple[float, float, TupleValue]]:
        """Every stored version of the object currently at *tid*, as
        ``(valid_from, valid_to, value)`` — the paper's walk-through-time
        support at the subtuple-manager level (not surfaced in the query
        language, matching the prototype's state)."""
        entry = self.catalog.table(table)
        if entry.version_store is None:
            raise TemporalError(f"table {table!r} is not versioned")
        object_id = entry.object_ids.get(tid)
        if object_id is None:
            raise TemporalError(f"{tid} is not a current version in {table!r}")
        out = []
        for version in entry.version_store.history(object_id):
            if version.root_tid is None:
                continue
            out.append(
                (version.valid_from, version.valid_to,
                 self._fetch(entry, version.root_tid))
            )
        return out

    def walk_through_time(
        self, table: str, tid: TID, start: Timestamp, end: Timestamp
    ) -> list[tuple[float, float, TupleValue]]:
        """The versions of one object whose validity intervals overlap
        ``[start, end)``."""
        from repro.temporal.versions import canonical_timestamp

        lo = canonical_timestamp(start)
        hi = canonical_timestamp(end)
        return [
            (valid_from, valid_to, value)
            for valid_from, valid_to, value in self.history(table, tid)
            if valid_from < hi and valid_to > lo
        ]

    # ======================================================================
    # DML (programmatic)
    # ======================================================================

    def insert(
        self, table: str, row: Any, at: Optional[Timestamp] = None
    ) -> TID:
        """Insert one (possibly nested) tuple given as plain data."""
        self._reject_sys_write(table)
        entry = self.catalog.table(table)
        value = TupleValue.from_plain(entry.schema, row)
        self._begin_write(entry)
        with self._wal_scope():
            tid = self._insert_value(entry, value, at)
            # claim the new object before any concurrent reader can S-lock
            # a recycled TID out from under this statement
            self._lock_object(table, tid, LockMode.X)
            return tid

    def _txn_guard(self, entry: TableEntry) -> None:
        if self._active_txn is None:
            return
        if entry.versioning == "subtuple":
            raise ExecutionError(
                f"table {entry.name!r} is subtuple-versioned and cannot be "
                "mutated inside db.transaction(): the subtuple manager "
                "writes version chains in place and rollback cannot "
                "unwrite them (mutate it outside the transaction, or use "
                "versioning='object')"
            )
        if entry.versioned:
            raise ExecutionError(
                "versioned tables cannot be mutated inside a transaction "
                "(their history cannot be unwritten)"
            )

    def insert_many(
        self, table: str, rows: Iterable[Any], at: Optional[Timestamp] = None
    ) -> list[TID]:
        # one WAL commit for the whole batch (crash ⇒ all or nothing)
        with self._wal_scope():
            return [self.insert(table, row, at=at) for row in rows]

    def _insert_value(
        self, entry: TableEntry, value: TupleValue, at: Optional[Timestamp]
    ) -> TID:
        if entry.temporal_manager is not None:
            self._note_temporal_axis(entry, at)
            tid = entry.temporal_manager.store(
                entry.schema, value, self._next_timestamp(at)
            )
            entry.tids.append(tid)
            self._index_object(entry, tid)
            return tid
        if entry.is_flat:
            tid = entry.heap.insert(value)  # type: ignore[union-attr]
            for index in entry.indexes.values():
                assert isinstance(index, FlatIndex)
                index.index_row(tid, value[index.definition.attribute_path[0]])
        else:
            tid = entry.manager.store(entry.schema, value)  # type: ignore[union-attr]
            self._index_object(entry, tid)
        entry.tids.append(tid)
        self._note_mvcc_insert(entry, tid)
        if entry.version_store is not None:
            object_id = entry.version_store.record_insert(tid, at=at)
            entry.object_ids[tid] = object_id
        return tid

    def delete(self, table: str, tid: TID, at: Optional[Timestamp] = None) -> None:
        """Delete one top-level tuple/object by TID."""
        self._reject_sys_write(table)
        entry = self.catalog.table(table)
        if tid not in entry.tids:
            raise self._missing_tuple(entry, tid)
        self._begin_write(entry)
        self._lock_object(table, tid, LockMode.X)  # may wait; recheck below
        if tid not in entry.tids:
            raise self._missing_tuple(entry, tid)
        self._check_snapshot_conflict(entry, tid)
        with self._wal_scope():
            self._deindex_on_write(entry, tid)
            entry.tids.remove(tid)
            if entry.temporal_manager is not None:
                self._note_temporal_axis(entry, at)
                entry.temporal_manager.delete_object(
                    tid, entry.schema, self._next_timestamp(at)
                )
                entry.history_tids.append(tid)
                return
            self._note_mvcc_delete(entry, tid)
            if entry.version_store is not None:
                object_id = entry.object_ids.pop(tid)
                entry.version_store.record_delete(object_id, at=at)
                return  # history keeps the stored bytes
            if entry.mvcc is not None:
                return  # snapshot readers may still need the bytes; GC frees them
            if entry.is_flat:
                entry.heap.delete(tid)  # type: ignore[union-attr]
            else:
                entry.manager.delete(tid, entry.schema)  # type: ignore[union-attr]

    def update(
        self,
        table: str,
        tid: TID,
        changes: Union[dict, Callable[[OpenObject], None]],
        at: Optional[Timestamp] = None,
    ) -> TID:
        """Update one tuple/object.

        *changes* is either a mapping of top-level atomic attributes to new
        values, or — for NF2 tables — a callable receiving the
        :class:`OpenObject` for arbitrary partial updates.  Returns the
        (possibly new, if versioned) TID.
        """
        self._reject_sys_write(table)
        entry = self.catalog.table(table)
        if tid not in entry.tids:
            raise self._missing_tuple(entry, tid)
        self._begin_write(entry)
        self._lock_object(table, tid, LockMode.X)  # may wait; recheck below
        if tid not in entry.tids:
            raise self._missing_tuple(entry, tid)
        self._check_snapshot_conflict(entry, tid)
        with self._wal_scope():
            if entry.temporal_manager is not None:
                self._note_temporal_axis(entry, at)
                when = self._next_timestamp(at)
                if isinstance(changes, dict):
                    entry.temporal_manager.update_atoms(
                        tid, entry.schema, [], changes, when
                    )
                else:
                    changes(entry.temporal_manager.mutator(tid, entry.schema, when))
                self._index_object(entry, tid)
                return tid
            if entry.version_store is not None or entry.mvcc is not None:
                return self._update_cow(entry, tid, changes, at)
            if entry.is_flat:
                if not isinstance(changes, dict):
                    raise ExecutionError("flat tables take a mapping of changes")
                row = entry.heap.fetch(tid).replace(**changes)  # type: ignore[union-attr]
                entry.heap.update(tid, row)  # type: ignore[union-attr]
                for index in entry.indexes.values():
                    assert isinstance(index, FlatIndex)
                    index.index_row(tid, row[index.definition.attribute_path[0]])
                return tid
            obj = entry.manager.open(tid, entry.schema)  # type: ignore[union-attr]
            if isinstance(changes, dict):
                obj.update_atoms([], changes)
            else:
                changes(obj)
            self._index_object(entry, tid)
            return tid

    def _update_cow(
        self,
        entry: TableEntry,
        tid: TID,
        changes: Union[dict, Callable[[OpenObject], None]],
        at: Optional[Timestamp],
    ) -> TID:
        """Copy-on-write update: the old version's bytes stay in place —
        as temporal history (versioned tables), for concurrent snapshot
        readers (MVCC tables), or both."""
        current = self._fetch(entry, tid)
        if isinstance(changes, dict):
            new_value = current.replace(**changes)
        else:
            # Apply the mutator to a scratch copy stored temporarily.
            if entry.is_flat:
                raise ExecutionError("flat tables take a mapping of changes")
            scratch_tid = entry.manager.store(entry.schema, current)  # type: ignore[union-attr]
            scratch = entry.manager.open(scratch_tid, entry.schema)  # type: ignore[union-attr]
            changes(scratch)
            new_value = scratch.materialize()
            entry.manager.delete(scratch_tid, entry.schema)  # type: ignore[union-attr]
        if entry.is_flat:
            new_tid = entry.heap.insert(new_value)  # type: ignore[union-attr]
            for index in entry.indexes.values():
                assert isinstance(index, FlatIndex)
                index.index_row(new_tid, new_value[index.definition.attribute_path[0]])
        else:
            new_tid = entry.manager.store(entry.schema, new_value)  # type: ignore[union-attr]
            self._index_object(entry, new_tid)
        self._deindex_on_write(entry, tid)
        position = entry.tids.index(tid)
        entry.tids[position] = new_tid
        self._note_mvcc_delete(entry, tid)
        self._note_mvcc_insert(entry, new_tid)
        if entry.version_store is not None:
            object_id = entry.object_ids.pop(tid)
            entry.object_ids[new_tid] = object_id
            entry.version_store.record_update(object_id, new_tid, at=at)
        return new_tid

    # -- MVCC bookkeeping on the write path ---------------------------------------

    def _note_mvcc_insert(self, entry: TableEntry, tid: TID) -> None:
        if entry.mvcc is not None:
            entry.mvcc.note_insert(tid, self.mvcc.current_txn())  # type: ignore[union-attr, arg-type]

    def _note_mvcc_delete(self, entry: TableEntry, tid: TID) -> None:
        if entry.mvcc is not None:
            entry.mvcc.note_delete(tid, self.mvcc.current_txn())  # type: ignore[union-attr, arg-type]

    def _write_snapshot(self, entry: TableEntry):
        """The snapshot the current session's *write* runs under, or None
        (2PL mode, an untracked table, or no session)."""
        if self.mvcc is None or entry.mvcc is None:
            return None
        session = self._session()
        return session._snapshot if session is not None else None

    def _check_snapshot_conflict(self, entry: TableEntry, tid: TID) -> None:
        """First-committer-wins: a pinned (snapshot-isolation) transaction
        may not overwrite a row version committed after its snapshot
        point."""
        snapshot = self._write_snapshot(entry)
        if snapshot is None or not snapshot.pinned:
            return
        if entry.mvcc.committed_after(tid, snapshot.point):  # type: ignore[union-attr]
            METRICS.inc("mvcc.conflicts")
            raise SerializationError(
                f"snapshot transaction lost a write conflict on {tid} of "
                f"{entry.name!r}: the row was modified by a transaction "
                "that committed after this snapshot was taken"
            )

    def _missing_tuple(self, entry: TableEntry, tid: TID) -> Exception:
        """The error for writing a TID that is not current: under a pinned
        snapshot that still *sees* the row, the row was deleted or
        superseded by a later commit — a serialization conflict, not a
        user mistake."""
        snapshot = self._write_snapshot(entry)
        if (
            snapshot is not None
            and snapshot.pinned
            and entry.mvcc.get(tid) is not None  # type: ignore[union-attr]
        ):
            METRICS.inc("mvcc.conflicts")
            return SerializationError(
                f"snapshot transaction lost a write conflict on {tid} of "
                f"{entry.name!r}: the row this snapshot sees was deleted "
                "or superseded by a transaction that committed after the "
                "snapshot was taken"
            )
        return ExecutionError(f"{tid} is not a current tuple of {entry.name!r}")

    def _note_temporal_axis(self, entry: TableEntry, at: Optional[Timestamp]) -> None:
        """Entry-level timestamp-axis guard for subtuple-versioned tables
        (their manager keeps no cross-restart state of its own; object
        versioning has the same check inside ``VersionStore._stamp``)."""
        if at is None:
            return
        axis = timestamp_axis(at)
        if entry.timestamp_axis is None:
            entry.timestamp_axis = axis
        elif entry.timestamp_axis != axis:
            raise TemporalError(
                f"cannot stamp a {axis} timestamp {at!r} on table "
                f"{entry.name!r} whose versions use {entry.timestamp_axis} "
                "timestamps: the two axes are not comparable and versions "
                "would be silently mis-ordered"
            )

    def _mvcc_reclaim(self, entry: TableEntry, tid: TID) -> None:
        """Physically release one dead version (called from GC once no
        snapshot can reach it): drop its deferred index entries and —
        unless a temporal VersionStore still needs the bytes as ASOF
        history — delete the stored record."""
        self._deindex(entry, tid)
        if entry.version_store is not None:
            return  # ASOF still reaches the bytes through the version chain
        if entry.is_flat:
            entry.heap.delete(tid)  # type: ignore[union-attr]
        else:
            entry.manager.delete(tid, entry.schema)  # type: ignore[union-attr]

    def _purge_mvcc_history(self, entry: TableEntry) -> None:
        """Drop every retained version of *entry* immediately (table
        rewrite under its exclusive lock): snapshot isolation is not
        maintained across DDL."""
        store = entry.mvcc
        assert store is not None and self.mvcc is not None
        self.mvcc.forget_table(store)
        for tid in store.live_tids():
            if tid in entry.tids:
                continue  # still current — the rewrite handles it
            try:
                self._mvcc_reclaim(entry, tid)
            except Exception:  # noqa: BLE001 — best effort, like GC
                METRICS.inc("mvcc.gc_errors")
        fresh = MvccStore(self.mvcc, entry)
        fresh.bootstrap(iter(entry.tids))
        entry.mvcc = fresh

    # -- index maintenance helpers ------------------------------------------------

    def _index_object(self, entry: TableEntry, tid: TID) -> None:
        if not entry.indexes:
            return
        if entry.temporal_manager is not None:
            obj = entry.temporal_manager.open_current(tid, entry.schema)
        else:
            obj = entry.manager.open(tid, entry.schema)  # type: ignore[union-attr]
        for index in entry.indexes.values():
            index.index_object(obj)  # NF2Index and TextIndex share this API

    def _deindex(self, entry: TableEntry, tid: TID) -> None:
        for index in entry.indexes.values():
            if isinstance(index, FlatIndex):
                index.deindex_row(tid)
            else:
                index.deindex_object(tid)

    def _deindex_on_write(self, entry: TableEntry, tid: TID) -> None:
        """Deindex a superseded/deleted version — deferred to GC on MVCC
        tables, where a concurrent snapshot reader must still find the old
        version through the index (PostgreSQL-vacuum style)."""
        if entry.mvcc is None:
            self._deindex(entry, tid)

    # ======================================================================
    # Statements (the language interface)
    # ======================================================================

    def execute(self, text: str) -> Any:
        """Execute any statement.  Queries return a
        :class:`~repro.model.values.TableValue`; DML returns the affected
        tuple count; DDL returns the created schema / ``None``;
        ``EXPLAIN [ANALYZE]`` returns the rendered plan text."""
        parse_start = time.perf_counter()
        WAITS.begin_statement()
        statement = self._parse_cached(text)
        parse_end = time.perf_counter()
        parse_ms = (parse_end - parse_start) * 1000.0
        before = METRICS.totals() if METRICS.enabled else None
        result: Any = None
        error: Optional[str] = None
        traced = False
        try:
            if isinstance(statement, ast.ExplainStatement):
                # ANALYZE runs the target under obs.profiled(): traced
                traced = statement.analyze
                result = self._execute_explain(statement, parse_ms)
            elif not TRACER.enabled and not TRACER.armed:
                result = self._dispatch(statement)
            else:
                traced = True
                with TRACER.span(
                    "statement",
                    kind=type(statement).__name__,
                    text=text.strip()[:200],
                ) as span:
                    if span is not None:
                        parse_span = Span("parse", start=parse_start)
                        parse_span.end = parse_end
                        span.children.append(parse_span)
                    result = self._dispatch(statement)
            return result
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            trace = TRACER.thread_last_trace if traced else None
            self._record_statement(
                text,
                statement,
                result,
                parse_start,
                before,
                error,
                waits=WAITS.take_statement(),
                trace_id=trace.trace_id if trace is not None else None,
            )

    _PARSE_CACHE_LIMIT = 512

    def _parse_cached(self, text: str) -> ast.Statement:
        """Parse *text*, reusing the AST of a recently seen statement.

        Parsing is pure and ASTs are never mutated after construction
        (the compiled-plan cache already shares them across sessions), so
        a byte-identical statement can skip the lexer/parser.  EXPLAIN is
        re-parsed every time: its rendered plan embeds parse timing.
        """
        with self._parse_cache_latch:
            statement = self._parse_cache.get(text)
            if statement is not None:
                self._parse_cache.move_to_end(text)
                if METRICS.enabled:
                    METRICS.inc("exec.parse_hits")
                return statement
        statement = parse_statement(text)
        if isinstance(statement, ast.ExplainStatement):
            return statement
        with self._parse_cache_latch:
            self._parse_cache[text] = statement
            self._parse_cache.move_to_end(text)
            while len(self._parse_cache) > self._PARSE_CACHE_LIMIT:
                self._parse_cache.popitem(last=False)
        return statement

    def _record_statement(
        self,
        text: str,
        statement: ast.Statement,
        result: Any,
        started: float,
        before: Optional[dict],
        error: Optional[str],
        waits: Optional[dict] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        """Finish-line accounting for one statement: the ``SYS.QUERIES``
        ring (always on), the slow-query sink (threshold-gated), the
        ``query.latency_ms`` histogram (only while metrics are enabled),
        the wait breakdown folded into the session, and the statement's
        trace id so the query log links to ``SYS.TRACES``."""
        latency_ms = (time.perf_counter() - started) * 1000.0
        kind = _statement_kind(statement)
        tables = _statement_tables(statement)
        if isinstance(result, TableValue):
            rows = len(result.rows)
        elif isinstance(result, int):
            rows = result
        else:
            rows = 0
        if METRICS.enabled:
            METRICS.histogram(
                "query.latency_ms",
                "statement latency, parse through execution (milliseconds)",
                buckets=LATENCY_BUCKETS_MS,
            ).observe(latency_ms, kind=kind, table=tables[0] if tables else "-")
            # success/error counters feed the error-budget SLOs
            METRICS.inc("query.statements", kind=kind)
            if error is not None:
                METRICS.inc("query.errors", kind=kind)
        counters = METRICS.delta(before) if before is not None else {}
        session = self._session()
        if session is not None and waits:
            session._note_waits(waits)
        self.query_log.record(
            QueryRecord(
                text=text.strip(),
                kind=kind,
                latency_ms=latency_ms,
                rows=rows,
                tables=tables,
                counters=counters,
                session=session.name if session is not None else None,
                error=error,
                waits=waits,
                trace_id=trace_id,
            )
        )

    #: statement types that mutate data or catalog — each executes as one
    #: WAL commit (multi-row UPDATE/DELETE become all-or-nothing on crash)
    _MUTATING_STATEMENTS = (
        ast.InsertStatement,
        ast.UpdateStatement,
        ast.DeleteStatement,
        ast.SubInsertStatement,
        ast.SubUpdateStatement,
        ast.SubDeleteStatement,
        ast.CreateTableStatement,
        ast.DropTableStatement,
        ast.CreateIndexStatement,
        ast.DropIndexStatement,
        ast.AlterTableStatement,
    )

    def _dispatch(self, statement: ast.Statement) -> Any:
        if isinstance(statement, self._MUTATING_STATEMENTS):
            with self._wal_scope():
                return self._dispatch_inner(statement)
        return self._dispatch_inner(statement)

    def _dispatch_inner(self, statement: ast.Statement) -> Any:
        if isinstance(statement, ast.Query):
            return self._executor.run(statement)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTableStatement):
            return self.create_table(statement.ddl_text, versioned=statement.versioned)
        if isinstance(statement, ast.DropTableStatement):
            self.drop_table(statement.table)
            return None
        if isinstance(statement, ast.CreateIndexStatement):
            if statement.text:
                self.create_text_index(
                    statement.name, statement.table, statement.attribute_path
                )
            else:
                self.create_index(
                    statement.name, statement.table, statement.attribute_path
                )
            return None
        if isinstance(statement, ast.DropIndexStatement):
            self.drop_index(statement.name)
            return None
        if isinstance(statement, ast.SubInsertStatement):
            from repro.query.dml import PartialDML

            return PartialDML(self).execute_insert(statement)
        if isinstance(statement, ast.SubUpdateStatement):
            from repro.query.dml import PartialDML

            return PartialDML(self).execute_update(statement)
        if isinstance(statement, ast.SubDeleteStatement):
            from repro.query.dml import PartialDML

            return PartialDML(self).execute_delete(statement)
        if isinstance(statement, ast.AlterTableStatement):
            return self.alter_table(
                statement.table,
                statement.action,
                statement.attribute_path,
                statement.payload,
            )
        raise QueryError(f"unhandled statement {statement!r}")  # pragma: no cover

    def query(self, text: str) -> TableValue:
        """Execute a SELECT query."""
        result = self.execute(text)
        if not isinstance(result, TableValue):
            raise QueryError("statement was not a query")
        return result

    def explain(self, text: str) -> str:
        """Describe how a query would be executed (without running it):
        the binding loops, and the access path chosen for every range
        variable."""
        statement = parse_statement(text)
        if isinstance(statement, ast.ExplainStatement):
            statement = statement.target
        return self._explain_plan(statement)

    def _explain_plan(self, statement: ast.Statement) -> str:
        if not isinstance(statement, ast.Query):
            return f"statement: {type(statement).__name__}"
        return "\n".join(self._plan_lines(statement))

    def _plan_lines(self, statement: ast.Query) -> list[str]:
        """Predicted plan: one loop line plus access-path line(s) per
        range variable, then the result shape."""
        from repro.query.binder import Binder

        schema = Binder(self).bind_query(statement)
        lines = ["query plan:"]
        for index, range_ in enumerate(statement.ranges):
            source = range_.source.describe()
            lines.append(f"  loop {index + 1}: {range_.var} IN {source}")
            lines.extend(self._access_lines(statement, range_, first=index == 0))
        out_kind = "list" if schema.ordered else "relation"
        lines.append(
            f"  result: {out_kind} ({', '.join(schema.attribute_names)})"
        )
        return lines

    def _access_lines(
        self, statement: ast.Query, range_: ast.Range, first: bool
    ) -> list[str]:
        """The access path chosen for one range variable."""
        source = range_.source
        if source.table is None:
            assert source.path is not None
            return [
                f"  access: nested scan of {source.path.dotted()} "
                "(correlated with outer loops)"
            ]
        if source.asof is not None:
            return ["  access: materialized source (path or ASOF)"]
        if is_sys_table(source.table):
            return [
                "  access: system view (rows computed from engine state "
                "at read time)"
            ]
        entry = self.catalog.table(source.table)
        if first:
            conditions = extract_conditions(statement, range_.var)
            if conditions is None:
                return ["  access: full scan (WHERE not index-coverable)"]
            if not conditions:
                return ["  access: full scan (no indexable conditions)"]
            if self.planner_mode == "first-match":
                roots, report = candidate_roots_first_match(entry, conditions)
                candidates = len(roots) if roots is not None else 0
            else:
                roots, report = candidate_roots(
                    entry,
                    conditions,
                    order_by=self._order_pushdown_path(statement, range_.var),
                )
                # drain the candidate stream: EXPLAIN reports the count
                candidates = sum(1 for _ in roots) if roots is not None else 0
            if roots is None:
                return [
                    "  access: full scan (no matching index; "
                    f"{len(conditions)} indexable condition(s) found)"
                ]
            lines = [
                f"  access: index ({', '.join(report.used_indexes)}) -> "
                f"{candidates} candidate object(s)"
            ]
            if report.estimated_candidates is not None:
                lines.append(
                    "  cost model: estimated "
                    f"{report.estimated_candidates:g} candidate(s); "
                    "intersection in ascending-selectivity order"
                )
            if report.considered and len(report.considered) > len(
                report.used_indexes
            ):
                scored = ", ".join(
                    f"{name}={estimate:g}"
                    for name, estimate in report.considered
                )
                lines.append(f"  considered: {scored}")
            if report.early_exit:
                lines.append(
                    "  early exit: intersection emptied before all index "
                    "probes"
                )
            if report.prefix_joins:
                lines.append(
                    f"  prefix joins on hierarchical addresses: "
                    f"{report.prefix_joins}"
                )
            if report.sort_elided:
                lines.append(
                    "  order: index key order matches ORDER BY "
                    "(final sort elided)"
                )
            return lines
        # inner table range: index nested loops when an equality conjunct
        # binds one of its top-level attributes through an index
        index_name = self._join_index_name(entry, statement.where, range_.var)
        if index_name is not None:
            return [f"  access: index nested loops ({index_name})"]
        return ["  access: full scan (re-scanned per outer binding)"]

    def _join_index_name(
        self,
        entry: TableEntry,
        where: Optional[ast.Predicate],
        var: str,
    ) -> Optional[str]:
        """The index :meth:`lookup_rows` would answer an inner range's
        equality conjunct through, or ``None``."""
        if where is None or not self.use_access_paths:
            return None
        from repro.query.planner import _flatten_and

        conjuncts = _flatten_and(where)
        if conjuncts is None:
            return None
        for conjunct in conjuncts:
            if not (isinstance(conjunct, ast.Comparison) and conjunct.op == "="):
                continue
            for mine in (conjunct.left, conjunct.right):
                if not (
                    isinstance(mine, ast.Path)
                    and mine.var == var
                    and len(mine.attribute_names) == 1
                    and not mine.has_subscript
                ):
                    continue
                attribute = mine.attribute_names[0]
                for index in entry.indexes.values():
                    if isinstance(index, TextIndex):
                        continue
                    if index.definition.attribute_path != (attribute,):
                        continue
                    if (
                        not isinstance(index, FlatIndex)
                        and index.definition.mode is AddressingMode.DATA_TID
                    ):
                        continue
                    return index.definition.name
        return None

    def _execute_explain(
        self, statement: ast.ExplainStatement, parse_ms: float
    ) -> str:
        """EXPLAIN renders the predicted plan; EXPLAIN ANALYZE also runs
        the statement under observability and annotates the plan with
        actual cardinalities, phase timings, and counter deltas."""
        target = statement.target
        if not statement.analyze:
            return self._explain_plan(target)
        from repro import obs

        is_query = isinstance(target, ast.Query)
        # Predicted access paths are computed *before* the metered run so
        # planner probes don't pollute the reported deltas.
        access_per_range: list[list[str]] = []
        if is_query:
            access_per_range = [
                self._access_lines(target, range_, first=index == 0)
                for index, range_ in enumerate(target.ranges)
            ]
        with obs.profiled():
            before_totals = METRICS.totals()
            before_buffer = self.io_stats.snapshot()
            start = time.perf_counter()
            with TRACER.span(
                "statement", kind=type(target).__name__, analyze=True
            ):
                result = self._dispatch(target)
            total_ms = (time.perf_counter() - start) * 1000.0
            counter_delta = METRICS.delta(before_totals)
            buffer_delta = self.io_stats.delta(before_buffer)
            # this thread's trace, not the global last (another session
            # may have finished a statement while we were metering)
            trace = TRACER.thread_last_trace

        lines: list[str] = []
        if is_query:
            profile = self._executor.last_profile
            scanned = dict(profile.rows_scanned) if profile is not None else {}
            lines.append("query plan (analyzed):")
            for index, range_ in enumerate(target.ranges):
                source = range_.source.describe()
                lines.append(f"  loop {index + 1}: {range_.var} IN {source}")
                lines.extend(access_per_range[index])
                lines.append(
                    f"    actual: {scanned.get(range_.var, 0)} row(s) scanned"
                )
            emitted = len(result.rows) if isinstance(result, TableValue) else 0
            lines.append(f"  result: {emitted} row(s)")
            if profile is not None:
                lines.append(
                    f"  predicate evaluations: {profile.predicate_evals}"
                    f"  join lookups: {profile.join_lookups}"
                )
            exec_report = self._executor.exec_report
            if exec_report is not None:
                cache = (
                    f"  plan cache: {exec_report.cache}"
                    if exec_report.cache is not None
                    else ""
                )
                lines.append(
                    f"  exec: mode={exec_report.mode}{cache}"
                    f"  settled conjuncts: {exec_report.settled_conjuncts}"
                    f"  columnar chunks: {exec_report.columnar_chunks}"
                )
            plan = self.last_plan
            if plan is not None and plan.used_any:
                lines.append("planner (analyzed):")
                lines.append(
                    "  indexes (selectivity order): "
                    + ", ".join(plan.used_indexes)
                )
                estimated = (
                    f"{plan.estimated_candidates:g}"
                    if plan.estimated_candidates is not None
                    else "?"
                )
                lines.append(
                    f"  estimated candidates: {estimated}"
                    f"  actual candidates: {plan.actual_candidates}"
                )
                lines.append(
                    f"  prefix joins: {plan.prefix_joins}"
                    f"  early exit: {'yes' if plan.early_exit else 'no'}"
                    f"  sort elided: {'yes' if plan.sort_elided else 'no'}"
                )
        else:
            lines.append(f"statement: {type(target).__name__}")
            lines.append(f"  result: {result!r}")
        lines.append("timings:")
        lines.append(f"  parse: {parse_ms:.3f} ms")
        for phase in ("bind", "execute"):
            span = trace.find(phase) if trace is not None else None
            if span is not None:
                lines.append(f"  {phase}: {span.duration_ms:.3f} ms")
        lines.append(f"  total: {total_ms:.3f} ms")
        lines.append("buffer (delta):")
        lines.append(
            "  "
            + "  ".join(f"{key}={value}" for key, value in buffer_delta.items())
        )
        engine = {
            name: value
            for name, value in counter_delta.items()
            if not name.startswith("buffer.")
        }
        if engine:
            lines.append("engine counters (delta):")
            for name, value in sorted(engine.items()):
                lines.append(f"  {name}: {value:g}")
        session = self._session()
        if session is not None:
            lines.append("locks:")
            lines.append(
                f"  requests: {session._stmt_lock_requests}"
                f"  waits: {session._stmt_lock_waits}"
                f"  held: {len(session.locks_held())}"
            )
            snapshot = getattr(session, "_snapshot", None)
            if snapshot is not None:
                pinned = " (pinned)" if snapshot.pinned else ""
                lines.append(
                    f"snapshot: lsn={snapshot.point:g} "
                    f"isolation={snapshot.isolation}{pinned}"
                )
        stmt_waits = WAITS.statement_waits()
        if stmt_waits:
            total_wait = sum(ms for _count, ms in stmt_waits.values())
            lines.append(f"waits: {total_wait:.3f} ms blocked")
            for event, (count, ms) in sorted(
                stmt_waits.items(), key=lambda kv: -kv[1][1]
            ):
                lines.append(f"  {event}: {ms:.3f} ms ({count} wait(s))")
        if trace is not None:
            lines.append(f"trace: {trace.trace_id}")
        return "\n".join(lines)

    def _execute_insert(self, statement: ast.InsertStatement) -> int:
        entry = self.catalog.table(statement.table)
        for literal in statement.rows:
            plain = _literal_to_plain(literal, entry.schema)
            self.insert(statement.table, plain)
        return len(statement.rows)

    def _execute_update(self, statement: ast.UpdateStatement) -> int:
        entry = self.catalog.table(statement.table)
        matches = self._match_tuples(entry, statement.var, statement.where)
        for tid, row in matches:
            env = {statement.var: row}
            changes = {}
            for name, expr in statement.assignments:
                attr = entry.schema.attribute(name)
                if not attr.is_atomic:
                    raise ExecutionError(
                        f"UPDATE assigns atomic attributes; {name!r} is a "
                        "subtable (use the partial-update API)"
                    )
                changes[name] = self._executor._eval_expression(expr, env)
            self.update(statement.table, tid, changes)
        return len(matches)

    def _execute_delete(self, statement: ast.DeleteStatement) -> int:
        entry = self.catalog.table(statement.table)
        matches = self._match_tuples(entry, statement.var, statement.where)
        for tid, _row in matches:
            self.delete(statement.table, tid)
        return len(matches)

    def _match_tuples(
        self, entry: TableEntry, var: str, where: Optional[ast.Predicate]
    ) -> list[tuple[TID, TupleValue]]:
        # DML row selection runs against the session's snapshot (when one
        # exists): a pinned transaction updates the rows *it sees*, and the
        # write path's first-committer-wins check turns any tuple that was
        # meanwhile changed or deleted into a SerializationError instead of
        # silently matching zero rows
        snapshot = self._read_snapshot(entry)
        if snapshot is not None:
            tids = list(_mvcc_read.snapshot_roots(entry, snapshot))
        else:
            tids = list(entry.tids)
        out = []
        for tid in tids:
            row = self._fetch(entry, tid)
            if where is None or self._executor._eval_predicate(where, {var: row}):
                out.append((tid, row))
        return out

    # ======================================================================
    # TableProvider protocol (executor + binder)
    # ======================================================================

    def table_schema(self, name: str) -> TableSchema:
        if is_sys_table(name):
            return sys_view_schema(name)
        return self.catalog.table(name).schema

    def is_versioned(self, name: str) -> bool:
        if is_sys_table(name):
            return False  # SYS rows are computed at read time: no history
        return self.catalog.table(name).versioned

    def iterate_table_for_query(
        self,
        name: str,
        asof: Optional[datetime.date],
        query: ast.Query,
        var: str,
    ) -> Iterable[TupleValue]:
        """Stream the tuples of *name* relevant to *query*'s range *var*.

        When indexes cover the WHERE clause, candidate roots *stream* out
        of the planner's generator straight into object fetch — the first
        qualifying tuple is delivered before the last index posting is
        examined (Volcano-style; materialization only happens where the
        cost model intersects posting sets).

        Planning happens *eagerly* — this is a regular function, not a
        generator — so ``last_plan`` (with its ``sort_elided`` flag and
        ``settled`` conjunct list) is published before the caller pulls
        the first row.  The executor shapes its loop around that report
        once per statement instead of re-reading it per row.
        """
        if is_sys_table(name):
            self.last_plan = None
            return iterate_sys_view(self, name)
        entry = self.catalog.table(name)
        self.last_plan = None
        lazy = self.exec_mode == "compiled"
        if self.use_access_paths and asof is None and entry.indexes:
            with TRACER.span("plan", table=name, var=var) as span:
                groups = extract_condition_groups(query, var)
                conditions = (
                    None
                    if groups is None
                    else [c for group in groups for c in group.conditions]
                )
                roots = report = None
                if conditions:
                    if self.planner_mode == "first-match":
                        roots, report = candidate_roots_first_match(
                            entry, conditions
                        )
                    else:
                        roots, report = candidate_roots(
                            entry,
                            conditions,
                            order_by=self._order_pushdown_path(query, var),
                            groups=groups,
                        )
                if span is not None:
                    span.annotate(
                        access="index" if roots is not None else "full scan",
                        estimated=(
                            report.estimated_candidates
                            if report is not None
                            else None
                        ),
                        indexes=(
                            list(report.used_indexes) if report is not None else []
                        ),
                        sort_elided=bool(
                            report is not None and report.sort_elided
                        ),
                    )
            if roots is not None:
                self.last_plan = report
                if METRICS.enabled:
                    METRICS.inc("query.index_plans")
                if entry.mvcc is not None or self._session() is not None:
                    # Index hits may be stale by fetch time (MVCC defers
                    # deindexing to GC; a 2PL writer can change a row's
                    # values between our index probe and its S-lock) —
                    # candidates stay a superset, nothing is settled.
                    report.settled = []
                return self._stream_candidates(entry, name, roots, lazy)
        if METRICS.enabled:
            METRICS.inc("query.scan_plans")
        return self.iterate_table(name, asof, lazy=lazy)

    def _stream_candidates(
        self, entry: TableEntry, name: str, roots: Iterable[TID], lazy: bool
    ) -> Iterator[TupleValue]:
        """Fetch planner candidates under the session's concurrency regime
        (MVCC snapshot visibility probe, or per-object 2PL S-locks)."""
        snapshot = self._read_snapshot(entry)
        if snapshot is not None:
            # lock-free: the index may surface dead or uncommitted
            # versions (deindexing is deferred to GC); the snapshot
            # visibility probe filters them
            for tid in roots:
                if _mvcc_read.tid_visible(entry, snapshot, tid):
                    yield self._fetch(entry, tid)
            return
        self._lock_table(name, LockMode.IS)
        lazy = (
            lazy and not entry.is_flat and entry.temporal_manager is None
        )
        current = set(entry.tids)
        for tid in roots:
            if tid in current:
                # S-lock each candidate object (the paper's local
                # address space = one root TID) as it streams out
                # of the planner; the wait may block behind a
                # writer, so re-check currency afterwards
                self._lock_object(name, tid, LockMode.S)
                if tid not in entry.tids:
                    continue
                yield self._fetch(entry, tid, lazy=lazy)

    @staticmethod
    def _order_pushdown_path(
        query: ast.Query, var: str
    ) -> Optional[tuple[str, ...]]:
        """The attribute path an interesting-order pushdown could sort by:
        exactly one ascending ORDER BY item that is a plain
        single-attribute path on *var* (the planned range variable).  The
        planner compares it against its chosen index's key order and sets
        ``sort_elided`` when the B+-tree scan already delivers it."""
        if len(query.order_by) != 1:
            return None
        item = query.order_by[0]
        if item.descending:
            return None
        expr = item.expr
        if not (
            isinstance(expr, ast.Path)
            and expr.var == var
            and len(expr.attribute_names) == 1
            and not expr.has_subscript
        ):
            return None
        return expr.attribute_names

    def lookup_rows(
        self, name: str, attribute: str, value: Any
    ) -> Optional[Iterable[TupleValue]]:
        """Index-nested-loop support: the current tuples of *name* whose
        top-level *attribute* equals *value*, answered through an index —
        ``None`` when no suitable index exists (callers scan).  The rows
        stream out of a generator (the probe itself is a point lookup; the
        object fetches happen lazily as the join loop advances)."""
        if not self.use_access_paths or is_sys_table(name):
            return None
        entry = self.catalog.table(name)
        for index in entry.indexes.values():
            if isinstance(index, TextIndex):
                continue
            if index.definition.attribute_path != (attribute,):
                continue
            if isinstance(index, FlatIndex):
                return self._stream_heap_rows(entry, index.search(value))
            if index.definition.mode is AddressingMode.DATA_TID:
                continue
            return self._stream_current_roots(entry, index.roots_for(value))
        return None

    def _read_snapshot(self, entry: TableEntry):
        """The MVCC snapshot the current thread's reads of *entry* run
        against, or None (2PL mode, an MVCC-exempt table, or a thread with
        no session).  Snapshot reads take **no locks at all** — visibility
        comes from version intervals, so readers never block writers and
        writers never block readers."""
        if self.mvcc is None or entry.mvcc is None:
            return None
        session = self._session()
        if session is None:
            return None
        return session._snapshot

    def _stream_current_roots(
        self, entry: TableEntry, roots: Iterable[TID]
    ) -> Iterator[TupleValue]:
        snapshot = self._read_snapshot(entry)
        if snapshot is not None:
            for root in roots:
                if _mvcc_read.tid_visible(entry, snapshot, root):
                    yield self._fetch(entry, root)
            return
        self._lock_table(entry.name, LockMode.IS)
        current = set(entry.tids)
        for root in roots:
            if root in current:
                self._lock_object(entry.name, root, LockMode.S)
                if root not in entry.tids:
                    continue  # deleted while we waited for the lock
                yield self._fetch(entry, root)

    def _current_tids(
        self, entry: TableEntry, asof: Optional[datetime.date]
    ) -> list[TID]:
        if asof is None:
            return list(entry.tids)
        if entry.temporal_manager is not None:
            return [
                tid
                for tid in entry.tids + entry.history_tids
                if entry.temporal_manager.exists_at(tid, asof)
            ]
        if entry.version_store is None:
            raise TemporalError(f"table {entry.name!r} is not versioned")
        return entry.version_store.roots_asof(asof)

    def _stream_heap_rows(
        self, entry: TableEntry, tids: Iterable[TID]
    ) -> Iterator[TupleValue]:
        """Index-probe results from a flat table, S-locked per row (or
        visibility-filtered lock-free under an MVCC snapshot)."""
        heap = entry.heap
        assert heap is not None
        snapshot = self._read_snapshot(entry)
        if snapshot is not None:
            for tid in tids:
                if _mvcc_read.tid_visible(entry, snapshot, tid):
                    yield heap.fetch(tid)
            return
        self._lock_table(entry.name, LockMode.IS)
        for tid in tids:
            self._lock_object(entry.name, tid, LockMode.S)
            if tid not in entry.tids:
                continue  # deleted while we waited for the lock
            yield heap.fetch(tid)

    def iterate_table(
        self,
        name: str,
        asof: Optional[datetime.date] = None,
        lazy: bool = False,
    ) -> Iterator[TupleValue]:
        if is_sys_table(name):
            if asof is not None:
                raise TemporalError(f"table {name!r} is not versioned")
            yield from iterate_sys_view(self, name)
            return
        entry = self.catalog.table(name)
        if asof is not None and entry.version_store is not None:
            # ASOF = a snapshot read at an old point on the *time* axis:
            # the same code path (snapshot_roots + interval_contains) MVCC
            # statement/transaction snapshots use on the LSN axis
            self._lock_table(name, LockMode.IS)
            time_snapshot = Snapshot(AXIS_TIME, canonical_timestamp(asof))
            for tid in _mvcc_read.snapshot_roots(entry, time_snapshot):
                yield self._fetch(entry, tid)
            return
        if asof is None:
            snapshot = self._read_snapshot(entry)
            if snapshot is not None:
                for tid in _mvcc_read.snapshot_roots(entry, snapshot):
                    yield self._fetch(entry, tid)
                return
        self._lock_table(name, LockMode.IS)
        if asof is not None and entry.temporal_manager is not None:
            for tid in self._current_tids(entry, asof):
                yield entry.temporal_manager.load_asof(tid, entry.schema, asof)
            return
        current_only = asof is None
        lazy = (
            lazy
            and current_only
            and not entry.is_flat
            and entry.temporal_manager is None
        )
        for tid in self._current_tids(entry, asof):
            self._lock_object(name, tid, LockMode.S)
            if current_only and tid not in entry.tids:
                continue  # deleted while we waited for the lock
            yield self._fetch(entry, tid, lazy=lazy)

    def _fetch(
        self, entry: TableEntry, tid: TID, lazy: bool = False
    ) -> TupleValue:
        if entry.temporal_manager is not None:
            return entry.temporal_manager.load(tid, entry.schema)
        if entry.is_flat:
            return entry.heap.fetch(tid)  # type: ignore[union-attr]
        if lazy:
            # compiled execution: decode the structure (MD subtuples) now,
            # data subtuples only when a predicate or projection touches
            # them — index-settled conjuncts never fetch data pages
            return entry.manager.load_lazy(tid, entry.schema)  # type: ignore[union-attr]
        return entry.manager.load(tid, entry.schema)  # type: ignore[union-attr]

    def scan_chunks(
        self, name: str, batch: int = 256
    ) -> Optional[Iterator[tuple[int, dict[str, list]]]]:
        """Columnar batches of a flat table's current rows, or ``None``
        when the table shape (or the concurrency regime) wants the
        row-at-a-time path.

        Each batch is ``(row_count, {attribute: values})`` with rows in
        insertion (TID-list) order — the same order ``iterate_table``
        yields, so results stay byte-identical.  Only offered without a
        session: no locks are taken, which is exactly the single-user
        statement model the row path has in that case too."""
        if is_sys_table(name):
            return None
        entry = self.catalog.table(name)
        if (
            not entry.is_flat
            or entry.temporal_manager is not None
            or self._session() is not None
        ):
            return None
        heap = entry.heap
        assert heap is not None
        tids = list(entry.tids)

        def chunks() -> Iterator[tuple[int, dict[str, list]]]:
            for start in range(0, len(tids), batch):
                part = tids[start : start + batch]
                yield len(part), heap.fetch_columns(part)

        return chunks()

    # ======================================================================
    # Object-level access
    # ======================================================================

    def tids(self, table: str) -> list[TID]:
        """Current top-level TIDs (root MD subtuples / heap tuples)."""
        return list(self.catalog.table(table).tids)

    def open_object(self, table: str, tid: TID) -> OpenObject:
        """Open a complex object for navigation / partial reads.

        Mutations through the returned handle bypass index maintenance —
        use :meth:`update` with a callable for indexed tables.
        """
        entry = self.catalog.table(table)
        if entry.is_flat:
            raise ExecutionError(f"{table!r} is a flat table; fetch its tuples")
        return entry.manager.open(tid, entry.schema)  # type: ignore[union-attr]

    def table_value(self, table: str, asof: Optional[datetime.date] = None) -> TableValue:
        """The table's full current (or ASOF) contents."""
        out = TableValue(self.table_schema(table))
        out.rows.extend(self.iterate_table(table, asof))
        return out

    def render(self, table: str) -> str:
        return render_table(self.table_value(table))

    # -- workstation check-out / check-in -----------------------------------------

    def checkout(self, table: str, tid: TID) -> bytes:
        """Export one complex object as a self-contained byte bundle (the
        paper's page-level "sent to a workstation"); the original stays in
        place."""
        entry = self.catalog.table(table)
        if entry.manager is None or entry.temporal_manager is not None:
            raise ExecutionError(
                "checkout applies to plain NF2 tables"
            )
        return entry.manager.export_object(tid).to_bytes()

    def checkin(self, table: str, blob: bytes) -> TID:
        """Import a checked-out bundle as a new complex object of *table*
        (typically on another Database instance — the workstation)."""
        from repro.storage.complex_object import ObjectBundle

        entry = self.catalog.table(table)
        if entry.manager is None or entry.temporal_manager is not None:
            raise ExecutionError("checkin applies to plain NF2 tables")
        self._begin_write(entry)
        with self._wal_scope():
            tid = entry.manager.import_object(ObjectBundle.from_bytes(blob))
            entry.tids.append(tid)
            self._note_mvcc_insert(entry, tid)
            self._index_object(entry, tid)
            self._lock_object(table, tid, LockMode.X)
            return tid

    # -- tuple names -----------------------------------------------------------------

    def names(self, table: str) -> TupleNameService:
        entry = self.catalog.table(table)
        if entry.manager is None:
            raise ExecutionError("tuple names exist for NF2 tables")
        return TupleNameService(entry.manager, entry.schema)

    def resolve_name(self, table: str, name: Union[str, TupleName]):
        if isinstance(name, str):
            name = TupleName.decode(name)
        return self.names(table).resolve(name)

    # ======================================================================
    # Maintenance
    # ======================================================================

    # ======================================================================
    # Transactions (single-user atomicity)
    # ======================================================================

    def transaction(self) -> "_Transaction":
        """A single-user atomicity scope::

            with db.transaction():
                db.execute("UPDATE ...")
                db.execute("DELETE ...")   # an exception rolls both back

        Rollback restores tuple *contents* by before-image (physical TIDs
        of restored tuples may differ).  Mutating versioned tables inside a
        transaction is rejected — their history is already an audit trail
        and cannot be unwritten.
        """
        return _Transaction(self)

    # ======================================================================
    # Storage reporting
    # ======================================================================

    def storage_report(self) -> dict:
        """Per-table storage statistics: pages, fill factor, and — for NF2
        tables — the MD/data page split and subtuple accounting."""
        from repro.storage.constants import PAGE_SIZE

        tables = {}
        for entry in self.catalog.tables():
            pages = entry.segment.pages
            used = 0
            for page_no in pages:
                used += PAGE_SIZE - entry.segment.free_space_on(page_no)
            report: dict = {
                "kind": "1NF" if entry.is_flat else "NF2",
                "tuples": len(entry.tids),
                "pages": len(pages),
                "bytes_used": used,
                "fill_factor": (
                    round(used / (len(pages) * PAGE_SIZE), 3) if pages else 0.0
                ),
            }
            if not entry.is_flat and entry.tids:
                manager = entry.manager
                md_pages = data_pages = 0
                md_subtuples = data_subtuples = 0
                for tid in entry.tids:
                    if entry.temporal_manager is not None:
                        obj = entry.temporal_manager.open_current(tid, entry.schema)
                        space = obj.space
                    else:
                        obj = manager.open(tid, entry.schema)  # type: ignore[union-attr]
                        space = obj.space
                    for page_no, is_md in zip(space.page_list, space.page_roles):
                        if page_no is None:
                            continue
                        if is_md:
                            md_pages += 1
                        else:
                            data_pages += 1
                    if entry.temporal_manager is None:
                        stats = manager.statistics(tid, entry.schema)  # type: ignore[union-attr]
                        md_subtuples += stats["md_subtuples"]
                        data_subtuples += stats["data_subtuples"]
                report["md_pages"] = md_pages
                report["data_pages"] = data_pages
                if entry.temporal_manager is None:
                    report["md_subtuples"] = md_subtuples
                    report["data_subtuples"] = data_subtuples
            tables[entry.name] = report
        return {
            "total_pages": self._file.page_count,
            "buffer": self.io_stats.snapshot(),
            "tables": tables,
        }

    # ======================================================================
    # Integrity checking
    # ======================================================================

    def verify(self, table: Optional[str] = None) -> list[str]:
        """Consistency check (CHECK TABLE): walks every stored object,
        validates Mini-Directory structure, page-pool separation, and
        index contents.  Returns a list of problem descriptions (empty =
        healthy)."""
        from repro.storage.subtuple import KIND_DATA, subtuple_kind

        problems: list[str] = []
        entries = (
            [self.catalog.table(table)] if table is not None else self.catalog.tables()
        )
        for entry in entries:
            name = entry.name
            # every current tuple must load and re-validate against its schema
            loaded: dict[TID, TupleValue] = {}
            for tid in entry.tids:
                try:
                    loaded[tid] = self._fetch(entry, tid)
                except Exception as exc:  # noqa: BLE001 — report, don't die
                    problems.append(f"{name}: {tid} failed to load: {exc}")
            if entry.is_flat:
                scanned = {tid for tid, _row in entry.heap.scan()}  # type: ignore[union-attr]
                missing = set(entry.tids) - scanned
                # heap records beyond the current tuples are legitimate
                # when they are retained versions: temporal history
                # (version chains) or MVCC versions awaiting GC
                keep = set(entry.tids)
                if entry.version_store is not None:
                    keep |= set(entry.version_store.all_roots_ever())
                if entry.mvcc is not None:
                    keep |= entry.mvcc.live_tids()
                extra = scanned - keep
                if missing:
                    problems.append(f"{name}: heap lost tuples {sorted(missing)}")
                if extra:
                    problems.append(f"{name}: heap has orphan tuples {sorted(extra)}")
            else:
                problems.extend(self._verify_objects(entry, loaded))
            problems.extend(self._verify_indexes(entry, loaded))
        return problems

    def _verify_objects(
        self, entry: TableEntry, loaded: dict[TID, TupleValue]
    ) -> list[str]:
        from repro.storage.subtuple import KIND_DATA, subtuple_kind

        problems: list[str] = []
        for tid in entry.tids:
            if tid not in loaded:
                continue
            try:
                if entry.temporal_manager is not None:
                    obj = entry.temporal_manager.open_current(tid, entry.schema)
                else:
                    obj = entry.manager.open(tid, entry.schema)  # type: ignore[union-attr]
            except Exception as exc:  # noqa: BLE001
                problems.append(f"{entry.name}: {tid} structure unreadable: {exc}")
                continue
            # page list entries must be owned by this table's segment
            for page_no in obj.space.pages:
                if not entry.segment.owns(page_no):
                    problems.append(
                        f"{entry.name}: {tid} page list names foreign page "
                        f"{page_no}"
                    )
            # pool separation: no data subtuple on an MD page
            for page_no, is_md in zip(obj.space.page_list, obj.space.page_roles):
                if page_no is None or not is_md:
                    continue
                page = self.buffer.fetch(page_no)
                try:
                    kinds = {
                        subtuple_kind(payload)
                        for _slot, flag, payload in page.slots()
                        if flag == 0 and payload
                    }
                finally:
                    self.buffer.unpin(page_no)
                if KIND_DATA in kinds:
                    problems.append(
                        f"{entry.name}: {tid} has data subtuples on MD page "
                        f"{page_no}"
                    )
        return problems

    def _verify_indexes(
        self, entry: TableEntry, loaded: dict[TID, TupleValue]
    ) -> list[str]:
        problems: list[str] = []
        for index_name, index in entry.indexes.items():
            if isinstance(index, TextIndex):
                continue
            if isinstance(index, FlatIndex):
                attribute = index.definition.attribute_path[0]
                for tid, row in loaded.items():
                    key = row[attribute]
                    if key is not None and tid not in index.search(key):
                        problems.append(
                            f"{entry.name}: index {index_name} misses "
                            f"{tid} (key {key!r})"
                        )
                continue
            path = index.definition.attribute_path
            for tid, row in loaded.items():
                for key in _keys_along_path(row, path):
                    hits = index.search(key)
                    roots = {
                        a.root if hasattr(a, "root") else a for a in hits
                    }
                    if index.definition.mode is not AddressingMode.DATA_TID and tid not in roots:
                        problems.append(
                            f"{entry.name}: index {index_name} misses "
                            f"{tid} (key {key!r})"
                        )
        return problems

    @property
    def _catalog_path(self) -> Optional[str]:
        if self._path is not None:
            return self._path + ".catalog.json"
        return None

    def save(self) -> None:
        """Flush pages and persist the catalog (disk-backed databases).

        The catalog lives in a JSON sidecar next to the page file; value
        and text indexes are rebuilt on reopen (their definitions are
        saved, not their trees).  With a WAL attached this is simply a
        checkpoint (pages flushed + synced, log truncated, sidecar
        rewritten durably).
        """
        path = self._catalog_path
        if path is None:
            raise StorageError_(
                "save() needs a disk-backed database (pass path= to Database)"
            )
        if self.wal is not None:
            self.checkpoint()
            return
        state = self._catalog_state()
        self.flush()
        self._file.sync()  # pages must be durable before the catalog points at them
        self._write_catalog_sidecar(state)

    def _catalog_state(self) -> dict:
        """The catalog serialized as plain JSON data (what the sidecar,
        WAL commit records, and checkpoint records all carry)."""
        from repro.model.ddl import schema_to_ddl

        tables = []
        for entry in self.catalog.tables():
            indexes = []
            for name, index in entry.indexes.items():
                definition = index.definition
                indexes.append(
                    {
                        "name": name,
                        "path": list(definition.attribute_path),
                        "text": isinstance(index, TextIndex),
                        "mode": definition.mode.value,
                        "fragment_length": getattr(index, "fragment_length", None),
                        # cost-model statistics ride along (tooling can
                        # inspect them without opening the trees; reopen
                        # re-derives exact values while rebuilding)
                        "stats": index.stats.snapshot(),
                    }
                )
            tables.append(
                {
                    "ddl": schema_to_ddl(entry.schema),
                    "versioned": entry.versioned,
                    "versioning": entry.versioning,
                    "timestamp_axis": entry.timestamp_axis,
                    "segment": entry.segment.state(),
                    "tids": [[t.page, t.slot] for t in entry.tids],
                    "history_tids": [
                        [t.page, t.slot] for t in entry.history_tids
                    ],
                    "version_store": (
                        entry.version_store.state()
                        if entry.version_store is not None
                        else None
                    ),
                    "object_ids": [
                        [[t.page, t.slot], oid]
                        for t, oid in entry.object_ids.items()
                    ],
                    "indexes": indexes,
                }
            )
        return {"format": 1, "tables": tables}

    def _write_catalog_sidecar(self, state: dict) -> None:
        """Atomically (and durably) replace the catalog sidecar file."""
        import json
        import os

        path = self._catalog_path
        assert path is not None
        temp = path + ".tmp"
        with open(temp, "w") as handle:
            json.dump(state, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)

    def _load_catalog(self, state: Optional[dict] = None) -> None:
        """Rebuild the catalog from *state* (recovered from the WAL) or,
        failing that, from the JSON sidecar next to the page file."""
        import json
        import os

        if state is None:
            path = self._catalog_path
            if path is None or not os.path.exists(path):
                return
            with open(path) as handle:
                state = json.load(handle)
        for table_state in state["tables"]:
            self._restore_table_entry(table_state)

    def _restore_table_entry(
        self, table_state: dict, current_only: bool = False
    ) -> TableEntry:
        """Rebuild one catalog entry (and its indexes) from its serialized
        state.  Called per table on open, and by replica apply
        (:mod:`repro.replication`) to install shipped catalog changes —
        the latter passes *current_only* so flat index builds skip the
        primary's dead MVCC versions (see :meth:`create_index`)."""
        from repro.model.ddl import parse_create_table
        from repro.storage.segment import Segment as _Segment

        schema = parse_create_table(table_state["ddl"])
        segment = _Segment.restore(self.buffer, table_state["segment"])
        versioning = table_state.get("versioning")
        entry = TableEntry(
            schema=schema, segment=segment,
            versioned=table_state["versioned"],
            versioning=versioning,
        )
        if versioning == "subtuple":
            from repro.temporal.subtuple_versions import TemporalObjectManager

            entry.temporal_manager = TemporalObjectManager(
                segment, self.structure
            )
            entry.manager = entry.temporal_manager._base
        elif schema.is_flat:
            entry.heap = HeapFile(segment, schema)
        else:
            entry.manager = ComplexObjectManager(segment, self.structure)
        entry.tids = [TID(*pair) for pair in table_state["tids"]]
        entry.history_tids = [
            TID(*pair) for pair in table_state.get("history_tids", [])
        ]
        entry.timestamp_axis = table_state.get("timestamp_axis")
        if table_state["version_store"] is not None:
            entry.version_store = VersionStore.restore(
                table_state["version_store"]
            )
            entry.object_ids = {
                TID(*tid): oid for tid, oid in table_state["object_ids"]
            }
        # orphan sweep + MVCC bootstrap must run before the index
        # rebuild below — it scans the heap and would index orphans
        self._sweep_entry_orphans(entry)
        self._bootstrap_mvcc(entry)
        self.catalog.add_table(entry)
        for index_state in table_state["indexes"]:
            if index_state["text"]:
                self.create_text_index(
                    index_state["name"], schema.name,
                    tuple(index_state["path"]),
                    fragment_length=index_state["fragment_length"] or 3,
                )
            else:
                self.create_index(
                    index_state["name"], schema.name,
                    tuple(index_state["path"]),
                    mode=AddressingMode(index_state["mode"]),
                    current_only=current_only,
                )
        return entry

    def _sweep_entry_orphans(self, entry: TableEntry) -> None:
        """Reclaim flat-heap records left by MVCC versions whose GC never
        ran (a crash between commit and collection).  Version chains are
        not persisted, so on reopen anything that is neither current nor
        temporal history is garbage by construction.  NF2 objects in the
        same situation are left in place (their pages are unreachable but
        harmless); documented in docs/CONCURRENCY.md."""
        if self.mvcc is None or not entry.is_flat or entry.heap is None:
            return
        keep = set(entry.tids)
        if entry.version_store is not None:
            keep |= set(entry.version_store.all_roots_ever())
        for tid, _row in list(entry.heap.scan()):
            if tid not in keep:
                entry.heap.delete(tid)

    @property
    def io_stats(self):
        return self.buffer.stats

    def reset_io_stats(self) -> None:
        self.buffer.stats.reset()

    def flush(self) -> None:
        self.buffer.flush_all()

    def close(self) -> None:
        # stop both samplers first: no repro-* thread survives a closed
        # database (a leaked recorder would sample freed engine state)
        self.ts.stop()
        self.ash.stop()
        if self.replication is not None:
            self.replication.shutdown()
            self.replication = None
        if self.mvcc is not None:
            with self._write_latch:
                # final GC drain: no snapshots survive close, so every
                # closed version is reclaimable; the checkpoint below (or
                # flush) persists the compacted heap.  Any page this
                # dirties outside a WAL txn is folded into a commit by
                # checkpoint()'s stray-unlogged-changes path.
                _mvcc_gc.collect(self)
        if self.wal is not None:
            try:
                if self.wal.failure is None:
                    self.checkpoint()
            finally:
                self.wal.close()
        else:
            self.flush()
        self._file.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


class _Transaction:
    """Single-user atomicity via first-touch table snapshots.

    The first mutation of each table inside the scope captures that
    table's full contents; rollback restores touched tables wholesale.
    Simple and identity-proof (physical TIDs are not trusted across
    delete/re-insert cycles); adequate for the prototype's single-user
    operation.
    """

    def __init__(self, db: Database):
        self._db = db
        self._snapshots: dict[str, list[dict]] = {}
        self._owns_wal = False
        self._owns_mvcc = False

    def touch(self, table: str) -> None:
        if table in self._snapshots:
            return
        # capture the *actual* current contents (not a snapshot read —
        # under MVCC the session's pinned snapshot may lag behind rows
        # committed before this transaction took its table X lock, and
        # rollback must not resurrect that older state)
        entry = self._db.catalog.table(table)
        self._snapshots[table] = [
            self._db._fetch(entry, tid).to_plain() for tid in list(entry.tids)
        ]

    def __enter__(self) -> "_Transaction":
        if self._db._active_txn is not None:
            raise ExecutionError("a transaction is already active")
        wal = self._db.wal
        if wal is not None:
            if wal.failure is not None:
                raise wal.failure  # poisoned WAL: no new transactions
            if not wal.in_txn:
                wal.begin()  # may raise — before any state change
                self._owns_wal = True
        if self._db.mvcc is not None:
            # the transaction owns the outer MVCC write scope: statement
            # scopes nest inside it, so no version becomes visible to
            # other snapshots until the whole transaction commits
            session = self._db._session()
            snapshot = session._snapshot if session is not None else None
            self._db.mvcc.begin_scope(snapshot)
            self._owns_mvcc = True
        self._db._active_txn = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        db = self._db
        db._active_txn = None
        wal = db.wal if self._owns_wal else None
        try:
            if exc_type is not None:
                if wal is not None:
                    try:
                        # log an ABORT (the failed work becomes a loser),
                        # then commit the rolled-back state under a
                        # successor txn so the durable state converges
                        # with memory
                        wal.convert_abort()
                        self.rollback()
                        wal.log_commit(
                            db._catalog_state(), db.buffer.image_for_log
                        )
                    except Exception as wal_exc:
                        # WAL failure (e.g. injected crash): poison it so
                        # no later mutation slips past a log that stopped
                        # recording; the original exception matters more
                        wal.poison(wal_exc)
                else:
                    self.rollback()
                return False  # propagate the exception after rolling back
            if wal is not None:
                try:
                    needs_checkpoint = wal.log_commit(
                        db._catalog_state(), db.buffer.image_for_log
                    )
                except BaseException as exc_:
                    wal.poison(exc_)
                    raise
                if needs_checkpoint:
                    if METRICS.enabled:
                        METRICS.inc("wal.auto_checkpoints")
                    db.checkpoint()
            return False
        finally:
            if self._owns_mvcc:
                self._owns_mvcc = False
                # commit point for MVCC: stamp this transaction's versions
                # (rolled-back work nets out to empty intervals) and make
                # them visible — after durability, never before
                db.mvcc.end_scope(
                    db.wal.last_commit_lsn if db.wal is not None else None
                )

    def rollback(self) -> None:
        """Restore every touched table to its snapshot."""
        db = self._db
        for table, rows in self._snapshots.items():
            entry = db.catalog.table(table)
            for tid in list(entry.tids):
                db.delete(table, tid)
            for row in rows:
                db.insert(table, row)
        self._snapshots.clear()


#: AST statement class -> the short kind label used by SYS.QUERIES and the
#: ``query.latency_ms`` histogram's ``kind`` label
_STATEMENT_KINDS = {
    "Query": "SELECT",
    "InsertStatement": "INSERT",
    "UpdateStatement": "UPDATE",
    "DeleteStatement": "DELETE",
    "SubInsertStatement": "INSERT",
    "SubUpdateStatement": "UPDATE",
    "SubDeleteStatement": "DELETE",
    "CreateTableStatement": "CREATE",
    "DropTableStatement": "DROP",
    "CreateIndexStatement": "CREATE",
    "DropIndexStatement": "DROP",
    "AlterTableStatement": "ALTER",
    "ExplainStatement": "EXPLAIN",
}


def _statement_kind(statement: ast.Statement) -> str:
    return _STATEMENT_KINDS.get(type(statement).__name__, "OTHER")


def _statement_tables(statement: ast.Statement) -> list[str]:
    """Top-level table names a statement touches (best effort; nested
    paths and ALTER payloads are not chased)."""
    if isinstance(statement, ast.ExplainStatement):
        return _statement_tables(statement.target)
    if isinstance(statement, ast.Query):
        out: list[str] = []
        for range_ in statement.ranges:
            if range_.source.table is not None:
                if range_.source.table not in out:
                    out.append(range_.source.table)
        return out
    table = getattr(statement, "table", None)
    if isinstance(table, str):
        return [table]
    return []


def _keys_along_path(row: TupleValue, path: tuple[str, ...]):
    """Every non-null value of *path* inside one (nested) tuple."""
    if len(path) == 1:
        value = row[path[0]]
        if value is not None:
            yield value
        return
    for child in row[path[0]]:
        yield from _keys_along_path(child, path[1:])


def _as_path(path: Union[str, tuple[str, ...]]) -> tuple[str, ...]:
    if isinstance(path, str):
        return tuple(part for part in path.split(".") if part)
    return tuple(path)


def _literal_to_plain(literal: ast.TupleLiteral, schema: TableSchema) -> dict:
    """Convert an INSERT tuple literal to plain nested data, checking the
    bracket kinds ('{}' relations vs '<>' lists) against the schema."""
    if len(literal.values) != len(schema.attributes):
        raise DataError(
            f"INSERT into {schema.name!r} needs {len(schema.attributes)} "
            f"values, got {len(literal.values)}"
        )
    out: dict = {}
    for attr, value in zip(schema.attributes, literal.values):
        if isinstance(value, ast.TableLiteral):
            if not attr.is_table:
                raise DataError(f"attribute {attr.name!r} is atomic")
            assert attr.table is not None
            if value.ordered != attr.table.ordered:
                wanted = "'<...>'" if attr.table.ordered else "'{...}'"
                raise DataError(
                    f"attribute {attr.name!r} is "
                    f"{'a list' if attr.table.ordered else 'a relation'}; "
                    f"use {wanted}"
                )
            out[attr.name] = [
                _literal_to_plain(row, attr.table) for row in value.rows
            ]
        elif isinstance(value, ast.Literal):
            if attr.is_table:
                raise DataError(
                    f"attribute {attr.name!r} is table-valued; use "
                    f"{'<...>' if attr.table.ordered else '{...}'}"  # type: ignore[union-attr]
                )
            out[attr.name] = value.value
        else:  # pragma: no cover
            raise DataError(f"unexpected literal {value!r}")
    return out
