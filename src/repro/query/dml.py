"""Partial (sub-object) DML: language-level insert / update / delete of
arbitrary parts of complex objects.

Section 4.1's third demand — "fast processing ... not only ... for complex
objects as a whole but for arbitrary parts of these objects as well" —
surfaces in the language as::

    INSERT INTO y.MEMBERS
    FROM   x IN DEPARTMENTS, y IN x.PROJECTS
    WHERE  x.DNO = 314 AND y.PNO = 17
    VALUES (77001, 'Staff')

    UPDATE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
    SET    FUNCTION = 'Adviser'
    WHERE  z.EMPNO = 56019

    DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
    WHERE  z.FUNCTION = 'Staff'

The evaluator enumerates FROM bindings *structurally* (tracking the
(subtable, position) path of every nested variable), groups matches per
stored object, and applies them through :meth:`Database.update`, so index
maintenance and temporal versioning come along for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ExecutionError
from repro.model.schema import TableSchema
from repro.model.values import TupleValue
from repro.query import ast
from repro.storage.tid import TID

if TYPE_CHECKING:
    from repro.database import Database

#: structural location of one bound variable
@dataclass(frozen=True)
class BoundVar:
    table: str
    tid: TID
    path: tuple[tuple[str, int], ...]  # (subtable name, position) hops


@dataclass
class Binding:
    env: dict[str, TupleValue]
    info: dict[str, BoundVar]


class PartialDML:
    """Executes Sub{Insert,Update,Delete}Statement against a Database."""

    def __init__(self, db: "Database"):
        self._db = db

    # -- binding enumeration ------------------------------------------------

    def _enumerate(
        self, ranges: tuple[ast.Range, ...], where: Optional[ast.Predicate]
    ) -> list[Binding]:
        bindings: list[Binding] = []

        def recurse(index: int, env: dict, info: dict) -> None:
            if index == len(ranges):
                if where is None or self._db._executor._eval_predicate(where, env):
                    bindings.append(Binding(dict(env), dict(info)))
                return
            range_ = ranges[index]
            source = range_.source
            if source.asof is not None:
                raise ExecutionError("DML operates on the current state, not ASOF")
            if source.table is not None:
                entry = self._db.catalog.table(source.table)
                for tid in list(entry.tids):
                    row = self._db._fetch(entry, tid)
                    recurse(
                        index + 1,
                        {**env, range_.var: row},
                        {**info, range_.var: BoundVar(source.table, tid, ())},
                    )
                return
            path = source.path
            assert path is not None
            if (
                path.var not in info
                or len(path.steps) != 1
                or path.steps[0].name is None
                or path.has_subscript
            ):
                raise ExecutionError(
                    "partial DML ranges must chain one subtable at a time "
                    f"(got {path.dotted()!r})"
                )
            parent = info[path.var]
            subtable_name = path.steps[0].name
            table_value = env[path.var][subtable_name]
            for position, row in enumerate(table_value.rows):
                recurse(
                    index + 1,
                    {**env, range_.var: row},
                    {
                        **info,
                        range_.var: BoundVar(
                            parent.table,
                            parent.tid,
                            parent.path + ((subtable_name, position),),
                        ),
                    },
                )

        recurse(0, {}, {})
        return bindings

    @staticmethod
    def _element_schema(schema: TableSchema, path: tuple[tuple[str, int], ...]) -> TableSchema:
        for subtable_name, _position in path:
            attr = schema.attribute(subtable_name)
            assert attr.table is not None
            schema = attr.table
        return schema

    # -- statements -----------------------------------------------------------

    def execute_insert(self, statement: ast.SubInsertStatement) -> int:
        from repro.database import _literal_to_plain

        target = statement.target
        if (
            len(target.steps) != 1
            or target.steps[0].name is None
            or target.has_subscript
        ):
            raise ExecutionError(
                "INSERT targets one subtable of a bound variable, e.g. "
                "y.MEMBERS"
            )
        subtable_name = target.steps[0].name
        bindings = self._enumerate(statement.ranges, statement.where)
        inserted = 0
        for binding in bindings:
            owner = binding.info.get(target.var)
            if owner is None:
                raise ExecutionError(f"unknown tuple variable {target.var!r}")
            entry = self._db.catalog.table(owner.table)
            element_schema = self._element_schema(entry.schema, owner.path)
            attr = element_schema.attribute(subtable_name)
            if not attr.is_table:
                raise ExecutionError(f"{subtable_name!r} is not a subtable")
            assert attr.table is not None
            rows = [_literal_to_plain(row, attr.table) for row in statement.rows]

            def apply(obj, path=owner.path, rows=rows) -> None:
                for row in rows:
                    obj.insert_element(list(path), subtable_name, row)

            self._db.update(owner.table, owner.tid, apply)
            inserted += len(rows)
        return inserted

    def execute_delete(self, statement: ast.SubDeleteStatement) -> int:
        bindings = self._enumerate(statement.ranges, statement.where)
        per_object: dict[tuple[str, TID], list[tuple[tuple[str, int], ...]]] = {}
        for binding in bindings:
            target = binding.info.get(statement.var)
            if target is None:
                raise ExecutionError(f"unknown tuple variable {statement.var!r}")
            if not target.path:
                # the variable ranges over a stored table: whole-tuple delete
                self._db.delete(target.table, target.tid)
                continue
            per_object.setdefault((target.table, target.tid), []).append(target.path)
        deleted = sum(1 for b in bindings)
        for (table, tid), paths in per_object.items():
            # reverse-lexicographic order: children and later siblings go
            # first so earlier positions stay valid
            ordered = sorted(
                set(paths),
                key=lambda p: tuple(i for _n, i in p),
                reverse=True,
            )

            def apply(obj, ordered=ordered) -> None:
                for path in ordered:
                    prefix, (subtable_name, position) = list(path[:-1]), path[-1]
                    obj.delete_element(prefix, subtable_name, position)

            self._db.update(table, tid, apply)
        return deleted

    def execute_update(self, statement: ast.SubUpdateStatement) -> int:
        bindings = self._enumerate(statement.ranges, statement.where)
        updated = 0
        for binding in bindings:
            target = binding.info.get(statement.var)
            if target is None:
                raise ExecutionError(f"unknown tuple variable {statement.var!r}")
            entry = self._db.catalog.table(target.table)
            element_schema = self._element_schema(entry.schema, target.path)
            changes: dict[str, Any] = {}
            for name, expr in statement.assignments:
                attr = element_schema.attribute(name)
                if not attr.is_atomic:
                    raise ExecutionError(
                        f"UPDATE assigns atomic attributes; {name!r} is a subtable"
                    )
                changes[name] = self._db._executor._eval_expression(expr, binding.env)
            if not target.path:
                self._db.update(target.table, target.tid, changes)
            else:
                self._db.update(
                    target.table,
                    target.tid,
                    lambda obj, path=target.path, changes=changes: obj.update_atoms(
                        list(path), changes
                    ),
                )
            updated += 1
        return updated
