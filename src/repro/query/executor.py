"""Evaluation of NF2 queries.

Execution follows the paper's mental model exactly (Section 3, Example 2):
each FROM range is a loop over the tuples of its source; an inner range
whose source is a path (``y IN x.PROJECTS``) re-binds for every binding of
the outer variable; sub-SELECTs in the select list are correlated queries
producing table-valued output attributes.

NULL semantics are two-valued: a comparison involving NULL is false
(``IS NULL`` exists for explicit tests).  ``ALL`` over an empty subtable is
vacuously true, ``EXISTS`` false.
"""

from __future__ import annotations

import datetime
import functools
import re
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Protocol

from repro.errors import ExecutionError
from repro.model.schema import TableSchema
from repro.model.values import TableValue, TupleValue
from repro.obs import METRICS, TRACER
from repro.query import ast
from repro.query.binder import Binder, Scope, SchemaProvider


class QueryProfile:
    """Per-statement execution accounting.

    Created only while observability is on (``METRICS`` or ``TRACER``
    enabled) — when off, the executor's hot loops pay a single ``is not
    None`` check per row and allocate nothing.
    """

    __slots__ = ("rows_scanned", "rows_emitted", "predicate_evals", "join_lookups")

    def __init__(self) -> None:
        #: rows pulled from each range variable's source, keyed by var name
        self.rows_scanned: dict[str, int] = {}
        self.rows_emitted = 0
        self.predicate_evals = 0
        self.join_lookups = 0

    @property
    def total_scanned(self) -> int:
        return sum(self.rows_scanned.values())

    def snapshot(self) -> dict:
        return {
            "rows_scanned": dict(self.rows_scanned),
            "rows_emitted": self.rows_emitted,
            "predicate_evals": self.predicate_evals,
            "join_lookups": self.join_lookups,
        }


@dataclass
class ExecReport:
    """How the last :meth:`Executor.run` executed — surfaced on the
    EXPLAIN ANALYZE ``exec:`` line (see docs/EXECUTOR.md)."""

    mode: str  # "compiled" | "interpreted"
    cache: Optional[str] = None  # "hit" | "miss" | None (interpreted)
    settled_conjuncts: int = 0  # WHERE conjuncts skipped (index-settled)
    columnar_chunks: int = 0  # columnar batches consumed


class TableProvider(SchemaProvider, Protocol):
    """What the executor needs from the database."""

    def iterate_table(
        self, name: str, asof: Optional[datetime.date] = None
    ) -> Iterable[TupleValue]:
        ...

    def iterate_table_for_query(
        self,
        name: str,
        asof: Optional[datetime.date],
        query: ast.Query,
        var: str,
    ) -> Iterable[TupleValue]:
        """Like :meth:`iterate_table`, but the provider may use the query's
        WHERE clause to choose an access path (index scan instead of a full
        scan).  The default implementation is a full scan."""
        ...


#: compiled statement plans kept per executor (hot statements re-run
#: constantly on a server; the cache is bounded, LRU-evicted)
_COMPILED_CACHE_LIMIT = 256
#: bound schemas kept before LRU eviction kicks in
_SCHEMA_CACHE_LIMIT = 1024


class Executor:
    def __init__(self, provider: TableProvider):
        self._provider = provider
        self._binder = Binder(provider)
        # id(query) -> (query, schema, schema epoch); the strong reference
        # to the query node prevents id() reuse after garbage collection.
        # LRU order: hot entries move to the back, eviction pops the front.
        self._schema_cache: OrderedDict[
            int, tuple[ast.Query, TableSchema, int]
        ] = OrderedDict()
        # statement fingerprint (the hashable Query AST) -> (schema epoch,
        # CompiledQuery or None for statements the compiler declined)
        self._compiled_cache: OrderedDict[ast.Query, tuple[int, Any]] = (
            OrderedDict()
        )
        #: the profile of the most recent profiled run (None if the last
        #: run happened with observability off)
        self.last_profile: Optional[QueryProfile] = None
        #: how the most recent run executed (mode, cache hit, settled
        #: conjuncts, columnar chunks) — feeds EXPLAIN ANALYZE
        self.exec_report: Optional[ExecReport] = None
        self._profile: Optional[QueryProfile] = None
        self._cache_state: Optional[str] = None

    # -- public ------------------------------------------------------------------

    def run(self, query: ast.Query) -> TableValue:
        """Execute a query; returns its (possibly nested) result table.

        When the provider's ``exec_mode`` is ``"compiled"`` the statement
        is compiled once into Python closures (keyed by its AST
        fingerprint — see :mod:`repro.query.compile`) and re-executed
        from the cache; otherwise the interpreted AST walker runs."""
        compiled = None
        self._cache_state = None
        mode = getattr(self._provider, "exec_mode", "interpreted")
        with TRACER.span("bind"):
            if mode == "compiled":
                compiled = self._compiled(query)
            schema = (
                compiled.schema
                if compiled is not None
                else self._result_schema(query, Scope())
            )
        profile = QueryProfile() if (METRICS.enabled or TRACER.enabled) else None
        self._profile = profile
        report = ExecReport(
            mode="compiled" if compiled is not None else "interpreted",
            cache=self._cache_state,
        )
        self.exec_report = report
        try:
            with TRACER.span("execute") as span:
                if compiled is not None:
                    result = compiled.execute(self, {}, is_top=True)
                else:
                    result = self._execute(query, schema, env={}, is_top=True)
                if span is not None and profile is not None:
                    span.annotate(**profile.snapshot())
        finally:
            self._profile = None
        if profile is not None:
            self.last_profile = profile
            if METRICS.enabled:
                METRICS.inc("query.rows_scanned", profile.total_scanned)
                METRICS.inc("query.rows_emitted", profile.rows_emitted)
                METRICS.inc("query.predicate_evals", profile.predicate_evals)
                METRICS.inc("query.join_lookups", profile.join_lookups)
                if compiled is not None:
                    METRICS.inc("exec.compiled_evals", profile.predicate_evals)
                if report.settled_conjuncts:
                    METRICS.inc("exec.settled_conjuncts", report.settled_conjuncts)
                if report.columnar_chunks:
                    METRICS.inc("exec.columnar_chunks", report.columnar_chunks)
        return result

    def _compiled(self, query: ast.Query) -> Optional[Any]:
        """The statement's compiled plan, from the fingerprint cache when
        its schema epoch still matches; ``None`` when the statement shape
        is one the compiler declines (the interpreter runs instead)."""
        from repro.query.compile import CompileError, compile_query

        epoch = getattr(self._provider, "schema_epoch", 0)
        cache = self._compiled_cache
        try:
            entry = cache.get(query)
        except TypeError:  # unhashable literal somewhere in the AST
            try:
                return compile_query(self, query)
            except CompileError:
                return None
        if entry is not None and entry[0] == epoch:
            cache.move_to_end(query)
            self._cache_state = "hit"
            if METRICS.enabled:
                METRICS.inc("exec.compile_hits")
            return entry[1]
        try:
            plan = compile_query(self, query)
        except CompileError:
            plan = None
        self._cache_state = "miss"
        if METRICS.enabled:
            METRICS.inc("exec.compiles")
            if plan is None:
                METRICS.inc("exec.compile_fallbacks")
        cache[query] = (epoch, plan)
        cache.move_to_end(query)
        while len(cache) > _COMPILED_CACHE_LIMIT:
            cache.popitem(last=False)
        return plan

    # -- schemas -----------------------------------------------------------------

    def _result_schema(self, query: ast.Query, scope: Scope) -> TableSchema:
        # parse-cached statements reuse AST objects across executions, so
        # a bound schema is only valid while the schema epoch stands
        epoch = getattr(self._provider, "schema_epoch", 0)
        cache = self._schema_cache
        entry = cache.get(id(query))
        if entry is not None and entry[0] is query and entry[2] == epoch:
            cache.move_to_end(id(query))
            return entry[1]
        schema = self._binder.bind_query(query, scope)
        cache[id(query)] = (query, schema, epoch)
        if len(cache) > _SCHEMA_CACHE_LIMIT:
            # evict the least-recently-used binding only — a wholesale
            # clear() here caused a full rebind storm on mixed workloads
            cache.popitem(last=False)
            if METRICS.enabled:
                METRICS.inc("exec.schema_cache_evictions")
        return schema

    # -- query evaluation -----------------------------------------------------------

    def _execute(
        self,
        query: ast.Query,
        schema: TableSchema,
        env: dict[str, TupleValue],
        is_top: bool = False,
    ) -> TableValue:
        result = TableValue(schema)
        sort_keys: list[tuple] = []
        ranges = list(query.ranges)
        prefetched: Optional[Iterable[TupleValue]] = None
        sort_elided = False
        if is_top and ranges:
            # The top-level first range is the one planned through
            # :meth:`TableProvider.iterate_table_for_query`.  The provider
            # plans *eagerly* — ``last_plan`` (including its
            # ``sort_elided`` flag) is published when the iterator is
            # created, before any row streams out — so elision is decided
            # once, here, instead of per row in ``emit`` plus an
            # after-the-fact ``last_plan`` read.
            head = ranges[0]
            prefetched = self._iterate_source(
                head.source,
                env,
                head.var,
                planner_query=query,
                where=query.where,
            )
            if query.order_by:
                plan = getattr(self._provider, "last_plan", None)
                sort_elided = plan is not None and getattr(
                    plan, "sort_elided", False
                )
        collect_keys = bool(query.order_by) and not sort_elided

        def emit(bound_env: dict[str, TupleValue]) -> None:
            profile = self._profile
            if query.where is not None:
                if profile is not None:
                    profile.predicate_evals += 1
                if not self._eval_predicate(query.where, bound_env):
                    return
            if profile is not None and is_top:
                profile.rows_emitted += 1
            result.rows.append(self._project(query, schema, bound_env))
            if collect_keys:
                sort_keys.append(
                    tuple(
                        _sortable(
                            _unwrap_single_attribute(
                                self._eval_expression(item.expr, bound_env)
                            )
                        )
                        for item in query.order_by
                    )
                )

        self._loop_ranges(query, ranges, env, emit, is_top, prefetched)
        if query.order_by:
            if sort_elided:
                # The access path already emitted candidates in index-key
                # order matching the (single, ascending) ORDER BY — the
                # final sort is skipped (Volcano-style interesting-order
                # pushdown).
                if METRICS.enabled:
                    METRICS.inc("query.sorts_elided")
            else:
                pairs = list(zip(result.rows, sort_keys))
                # stable multi-key sort: apply keys right-to-left
                for index in range(len(query.order_by) - 1, -1, -1):
                    pairs.sort(
                        key=lambda pair: pair[1][index],
                        reverse=query.order_by[index].descending,
                    )
                result.rows = [row for row, _keys in pairs]
        if query.distinct:
            seen: set = set()
            unique = []
            for row in result.rows:
                key = row.canonical()
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            result.rows = unique
        return result

    def _loop_ranges(
        self,
        query: ast.Query,
        ranges: list[ast.Range],
        env: dict[str, TupleValue],
        emit: Callable[[dict[str, TupleValue]], None],
        is_top: bool,
        prefetched: Optional[Iterable[TupleValue]] = None,
    ) -> None:
        if not ranges:
            emit(env)
            return
        head, tail = ranges[0], ranges[1:]
        if prefetched is not None:
            source_rows = prefetched
        else:
            source_rows = self._iterate_source(
                head.source,
                env,
                head.var,
                planner_query=None,
                where=query.where,
            )
        profile = self._profile
        for row in source_rows:
            if profile is not None:
                profile.rows_scanned[head.var] = (
                    profile.rows_scanned.get(head.var, 0) + 1
                )
            inner = dict(env)
            inner[head.var] = row
            self._loop_ranges(query, tail, inner, emit, is_top)

    def _iterate_source(
        self,
        source: ast.Source,
        env: dict[str, TupleValue],
        var: str,
        planner_query: Optional[ast.Query] = None,
        where: Optional[ast.Predicate] = None,
    ) -> Iterable[TupleValue]:
        if source.table is not None:
            if planner_query is not None:
                return self._provider.iterate_table_for_query(
                    source.table, source.asof, planner_query, var
                )
            if source.asof is None and where is not None:
                # index-nested-loop join: an inner range whose predicate
                # ties one of its attributes to already-bound variables can
                # be fetched through an index instead of scanned
                rows = self._join_lookup(source.table, where, var, env)
                if rows is not None:
                    return rows
            return self._provider.iterate_table(source.table, source.asof)
        assert source.path is not None
        value = self._eval_expression(source.path, env)
        if not isinstance(value, TableValue):
            raise ExecutionError(
                f"range source {source.path.dotted()!r} did not yield a table"
            )
        return value.rows

    def _join_lookup(
        self,
        table: str,
        where: ast.Predicate,
        var: str,
        env: dict[str, TupleValue],
    ) -> Optional[Iterable[TupleValue]]:
        """Find an equality conjunct ``var.ATTR = <bound expression>`` and
        answer it through an index (System-R style index nested loops).
        The provider streams the matching rows (no materialized list)."""
        lookup = getattr(self._provider, "lookup_rows", None)
        if lookup is None:
            return None
        from repro.query.planner import _flatten_and

        conjuncts = _flatten_and(where)
        if conjuncts is None:
            return None
        for conjunct in conjuncts:
            if not (isinstance(conjunct, ast.Comparison) and conjunct.op == "="):
                continue
            for mine, theirs in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not (
                    isinstance(mine, ast.Path)
                    and mine.var == var
                    and len(mine.attribute_names) == 1
                    and not mine.has_subscript
                ):
                    continue
                if isinstance(theirs, ast.Literal):
                    value = theirs.value
                elif isinstance(theirs, ast.Path) and theirs.var in env:
                    value = self._eval_expression(theirs, env)
                    value = _unwrap_single_attribute(value)
                else:
                    continue
                if value is None or isinstance(value, (TableValue, TupleValue)):
                    continue
                rows = lookup(table, mine.attribute_names[0], value)
                if rows is not None:
                    if self._profile is not None:
                        self._profile.join_lookups += 1
                    return rows
        return None

    def _project(
        self, query: ast.Query, schema: TableSchema, env: dict[str, TupleValue]
    ) -> TupleValue:
        if query.select_star:
            row = env[query.ranges[0].var]
            return TupleValue(
                schema, {name: row[name] for name in schema.attribute_names}
            )
        values: dict[str, Any] = {}
        for attr, item in zip(schema.attributes, query.select):
            if isinstance(item.expr, ast.Query):
                assert attr.table is not None
                inner_schema = attr.table
                sub = self._execute(item.expr, inner_schema, env)
                values[attr.name] = sub
            else:
                value = self._eval_expression(item.expr, env)
                value = _unwrap_single_attribute(value)
                if attr.is_table and isinstance(value, TableValue):
                    assert attr.table is not None
                    value = _retag_table(value, attr.table)
                values[attr.name] = value
        return TupleValue(schema, values)

    # -- predicates ----------------------------------------------------------------------

    def _eval_predicate(self, predicate: ast.Predicate, env: dict[str, TupleValue]) -> bool:
        if isinstance(predicate, ast.BoolOp):
            if predicate.op == "AND":
                return all(self._eval_predicate(p, env) for p in predicate.operands)
            return any(self._eval_predicate(p, env) for p in predicate.operands)
        if isinstance(predicate, ast.Not):
            return not self._eval_predicate(predicate.operand, env)
        if isinstance(predicate, ast.Quantifier):
            rows = self._iterate_source(
                predicate.source,
                env,
                predicate.var,
                where=predicate.body if predicate.kind == "EXISTS" else None,
            )
            if predicate.kind == "EXISTS":
                return any(
                    self._eval_predicate(predicate.body, {**env, predicate.var: row})
                    for row in rows
                )
            return all(
                self._eval_predicate(predicate.body, {**env, predicate.var: row})
                for row in rows
            )
        if isinstance(predicate, ast.Contains):
            subject = self._eval_expression(predicate.subject, env)
            subject = _unwrap_single_attribute(subject)
            matched = (
                isinstance(subject, str)
                and masked_match(predicate.pattern, subject)
            )
            return matched != predicate.negated
        if isinstance(predicate, ast.IsNull):
            subject = self._eval_expression(predicate.subject, env)
            subject = _unwrap_single_attribute(subject)
            return (subject is None) != predicate.negated
        if isinstance(predicate, ast.Comparison):
            left = self._eval_expression(predicate.left, env)
            right = self._eval_expression(predicate.right, env)
            return compare(predicate.op, left, right)
        raise ExecutionError(f"unhandled predicate {predicate!r}")  # pragma: no cover

    # -- expressions ----------------------------------------------------------------------

    def _eval_expression(self, expr: ast.Expression, env: dict[str, TupleValue]) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Path):
            return self._eval_path(expr, env)
        if isinstance(expr, ast.Query):
            scope = _scope_from_env(env)
            schema = self._result_schema(expr, scope)
            return self._execute(expr, schema, env)
        if isinstance(expr, ast.Aggregate):
            return self._eval_aggregate(expr, env)
        raise ExecutionError(f"unhandled expression {expr!r}")  # pragma: no cover

    def _eval_aggregate(self, expr: ast.Aggregate, env: dict[str, TupleValue]) -> Any:
        if isinstance(expr.argument, ast.Path):
            values = self._eval_path_multi(expr.argument, env)
        else:
            values = [self._eval_expression(expr.argument, env)]
        return _aggregate(expr.function, values)

    def _eval_path_multi(self, path: ast.Path, env: dict[str, TupleValue]) -> list[Any]:
        """Evaluate a path with flattening across subtable levels: a name
        step applied to a table applies to each of its tuples."""
        if path.var not in env:
            raise ExecutionError(f"unbound tuple variable {path.var!r}")
        current: list[Any] = [env[path.var]]
        for step in path.steps:
            if step.name is not None:
                next_values: list[Any] = []
                for value in current:
                    if value is None:
                        continue
                    if isinstance(value, TableValue):
                        next_values.extend(row[step.name] for row in value.rows)
                    elif isinstance(value, TupleValue):
                        next_values.append(value[step.name])
                    else:
                        raise ExecutionError(
                            f"cannot select {step.name!r} in {path.dotted()!r}"
                        )
                current = next_values
            if step.subscript is not None:
                index = step.subscript - 1
                subscripted: list[Any] = []
                for value in current:
                    if isinstance(value, TableValue) and 0 <= index < len(value):
                        subscripted.append(value[index])
                    else:
                        subscripted.append(None)
                current = subscripted
        return current

    def _eval_path(self, path: ast.Path, env: dict[str, TupleValue]) -> Any:
        if path.var not in env:
            raise ExecutionError(f"unbound tuple variable {path.var!r}")
        current: Any = env[path.var]
        for step in path.steps:
            if step.name is not None:
                if current is None:
                    return None
                if not isinstance(current, TupleValue):
                    raise ExecutionError(
                        f"cannot select {step.name!r} in {path.dotted()!r}"
                    )
                current = current[step.name]
            if step.subscript is not None:
                if current is None:
                    return None
                if not isinstance(current, TableValue):
                    raise ExecutionError(
                        f"subscript in {path.dotted()!r} applies to a table"
                    )
                index = step.subscript - 1  # the language is 1-based
                if not 0 <= index < len(current):
                    current = None
                else:
                    current = current[index]
        return current


# ---------------------------------------------------------------------------
# value helpers
# ---------------------------------------------------------------------------


def _unwrap_single_attribute(value: Any) -> Any:
    """A tuple with a single atomic attribute acts as that value — the
    paper compares ``x.AUTHORS[1] = 'Jones'`` directly."""
    if isinstance(value, TupleValue):
        attrs = value.schema.attributes
        if len(attrs) == 1 and attrs[0].is_atomic:
            return value[attrs[0].name]
    return value


def _retag_table(value: TableValue, schema: TableSchema) -> TableValue:
    """Re-label a table value with an output attribute's schema (same
    attribute names; only the table name / identity differs)."""
    if value.schema.attribute_names != schema.attribute_names:
        raise ExecutionError(
            f"cannot relabel table {value.schema.name!r} as {schema.name!r}"
        )
    out = TableValue(schema)
    out.rows.extend(
        TupleValue(schema, {name: row[name] for name in schema.attribute_names})
        for row in value.rows
    )
    return out


def compare(op: str, left: Any, right: Any) -> bool:
    """Two-valued comparison; anything involving NULL is false."""
    left = _unwrap_single_attribute(left)
    right = _unwrap_single_attribute(right)
    if left is None or right is None:
        return False
    if isinstance(left, TableValue) or isinstance(right, TableValue):
        if not (isinstance(left, TableValue) and isinstance(right, TableValue)):
            # a table and an atom are *incomparable* but both non-NULL:
            # they are definitely not equal, so <> must say so (returning
            # False for both = and <> would make the pair "neither equal
            # nor unequal" — three-valued logic this engine does not have)
            return op == "<>"
        equal = left.canonical() == right.canonical()
        if op == "=":
            return equal
        if op == "<>":
            return not equal
        raise ExecutionError("tables compare with = and <> only")
    if isinstance(left, bool) != isinstance(right, bool):
        # BOOLEAN vs number: same reasoning — distinct types, never equal
        return op == "<>"
    try:
        if op == "=":
            return bool(left == right)
        if op == "<>":
            return bool(left != right)
        if op == "<":
            return bool(left < right)
        if op == "<=":
            return bool(left <= right)
        if op == ">":
            return bool(left > right)
        if op == ">=":
            return bool(left >= right)
    except TypeError as exc:
        raise ExecutionError(f"cannot compare {left!r} with {right!r}") from exc
    raise ExecutionError(f"unknown comparison operator {op!r}")


def masked_match(pattern: str, text: Any) -> bool:
    """The paper's masked search: ``*`` matches any run, ``?`` one
    character; matching is case-insensitive and the pattern may match
    anywhere inside the subject (substring semantics — ``CONTAINS
    'latency'`` matches ``'query.latency_ms'``; use ``=`` for exact
    string equality).

    A non-string subject (a number, a NULL that slipped past the caller)
    simply does not match — two-valued semantics, not a crash."""
    if not isinstance(text, str):
        return False
    regex = _compile_mask(pattern)
    return regex.search(text) is not None


@functools.lru_cache(maxsize=512)
def _compile_mask(pattern: str) -> "re.Pattern[str]":
    # cached: a CONTAINS over N rows compiles its mask once, not N times
    # (the cache also serves the planner / text-index masked_match paths)
    parts = []
    for char in pattern:
        if char == "*":
            parts.append(".*")
        elif char == "?":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.IGNORECASE | re.DOTALL)


def _aggregate(function: str, values: list[Any]) -> Any:
    """Compute one aggregate over flattened values.

    Tables in the value list are unwrapped: COUNT adds their cardinality,
    the others consume their (single-attribute) column.  NULLs are ignored;
    an empty input yields 0 for COUNT and NULL for the rest (SQL-style).
    """
    atoms: list[Any] = []
    count = 0
    for value in values:
        if value is None:
            continue
        if isinstance(value, TableValue):
            count += len(value)
            attrs = value.schema.attributes
            if len(attrs) == 1 and attrs[0].is_atomic:
                atoms.extend(
                    row[attrs[0].name]
                    for row in value.rows
                    if row[attrs[0].name] is not None
                )
            elif function != "COUNT":
                raise ExecutionError(
                    f"{function} needs atomic values, got table "
                    f"{value.schema.name!r}"
                )
            continue
        value = _unwrap_single_attribute(value)
        if value is None:
            continue
        count += 1
        atoms.append(value)
    if function == "COUNT":
        return count
    if not atoms:
        return None
    try:
        if function == "SUM":
            return sum(atoms)
        if function == "AVG":
            return sum(atoms) / len(atoms)
        if function == "MIN":
            return min(atoms)
        if function == "MAX":
            return max(atoms)
    except TypeError as exc:
        # heterogeneous atoms (a string among numbers, ...) must surface
        # as a query error, not a raw TypeError escaping the executor
        raise ExecutionError(
            f"{function} over mixed value types: {exc}"
        ) from exc
    raise ExecutionError(f"unknown aggregate {function!r}")  # pragma: no cover


def _sortable(value: Any) -> tuple:
    """A totally-ordered proxy for an atomic value (NULLs sort first;
    booleans before numbers never mix — the binder guarantees homogeneous
    keys, this is only a tiebreaker-safe encoding).

    ``datetime.datetime`` is a subclass of ``datetime.date``, so it must
    be handled *first* and must keep its time-of-day: collapsing both to
    ``toordinal()`` made all timestamps of one day compare equal and
    ORDER BY over them nondeterministic.  Dates encode as
    ``(4, ordinal, 0.0)`` so dates and timestamps stay mutually
    comparable (a bare date sorts as that day's midnight).
    """
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    if isinstance(value, datetime.datetime):
        seconds = (
            value.hour * 3600
            + value.minute * 60
            + value.second
            + value.microsecond / 1_000_000
        )
        return (4, value.toordinal(), seconds)
    if isinstance(value, datetime.date):
        return (4, value.toordinal(), 0.0)
    raise ExecutionError(f"cannot sort by {value!r}")


def _scope_from_env(env: dict[str, TupleValue]) -> Scope:
    scope = Scope()
    for var, row in env.items():
        scope.define(var, row.schema)
    return scope
