"""The NF2 query language: lexer, parser, binder, planner, executor, DML."""

from repro.query.parser import parse_statement, parse_query

__all__ = ["parse_statement", "parse_query"]
