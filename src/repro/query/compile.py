"""The compiled execution core: statements become Python closures.

The interpreted executor re-walks the AST for every row — every WHERE
evaluation re-dispatches on node types, every path re-parses its steps,
every projection re-discovers its shape.  This module compiles a
statement **once** into a tree of closures keyed by its AST fingerprint
(the frozen :class:`repro.query.ast.Query` is hashable, so the statement
itself is the cache key): predicates become functions, paths become
specialized attribute getters, and the row loop becomes a tight
recursion that mutates a single environment dict instead of copying it
per row (safe — the binder rejects all variable shadowing).

Three further wins ride on the compiled shape (ROADMAP item 2):

* **Settled conjuncts** — the planner reports WHERE conjuncts whose
  index decomposition was lossless (``PlanReport.settled``); compiled
  execution drops their closures from the residual predicate, so
  index-covered conditions are never re-tested against decoded data
  subtuples (the paper's Section 4.2 point).
* **Columnar flat scans** — a single-range query over a stored flat
  table whose predicate/projection/order keys touch only first-level
  atomics runs over columnar chunks (``Database.scan_chunks`` +
  ``HeapFile.fetch_columns``): one decode pass per batch, tuple objects
  built only for qualifying rows via ``TupleValue.trusted``.
* **Lazy object decode** — NF2 candidates arrive as
  :class:`repro.storage.lazy.LazyTupleValue`; data subtuples of parts
  the residual predicate and projection never touch are never read.

Statement shapes the compiler does not handle raise
:class:`CompileError`; the executor falls back to the interpreter (the
two engines are A/B comparable via ``db.exec_mode`` and must return
byte-identical results — see tests/test_compile.py).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import ExecutionError
from repro.model.schema import TableSchema
from repro.model.values import TableValue, TupleValue
from repro.obs import METRICS
from repro.query import ast
from repro.query.binder import Scope
from repro.query.executor import (
    Executor,
    _compile_mask,
    _retag_table,
    _sortable,
    _unwrap_single_attribute,
    compare,
)


class CompileError(Exception):
    """The statement shape is not compilable — interpret instead."""


#: sentinel: a join-candidate getter whose variable is not bound yet
_SKIP = object()
#: sentinel: variable absent from the environment before a loop bound it
_MISSING = object()

_MIRROR = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def compile_query(executor: Executor, query: ast.Query) -> "CompiledQuery":
    """Compile *query* against the top-level scope.

    Binding errors propagate unchanged (they are user errors, identical
    in both engines); :class:`CompileError` means "interpret this one".
    """
    schema = executor._result_schema(query, Scope())
    return CompiledQuery(executor, query, schema)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def _compile_path(path: ast.Path) -> Callable[[Executor, dict], Any]:
    var = path.var
    steps = path.steps
    if len(steps) == 1 and steps[0].name is not None and steps[0].subscript is None:
        # the overwhelmingly common shape: one plain attribute step
        name = steps[0].name

        def get_attr(ex: Executor, env: dict) -> Any:
            try:
                row = env[var]
            except KeyError:
                raise ExecutionError(f"unbound tuple variable {var!r}") from None
            if row is None:
                return None
            if not isinstance(row, TupleValue):
                raise ExecutionError(f"cannot select {name!r} in {path.dotted()!r}")
            return row[name]

        return get_attr

    if not steps:

        def get_var(ex: Executor, env: dict) -> Any:
            try:
                return env[var]
            except KeyError:
                raise ExecutionError(f"unbound tuple variable {var!r}") from None

        return get_var

    # general shape: defer to the interpreter's path walker (it handles
    # NULL propagation and 1-based subscripts); still no AST re-dispatch
    # above this node
    def get_path(ex: Executor, env: dict) -> Any:
        return ex._eval_path(path, env)

    return get_path


def _compile_expression(expr: ast.Expression) -> Callable[[Executor, dict], Any]:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda ex, env: value
    if isinstance(expr, ast.Path):
        return _compile_path(expr)
    if isinstance(expr, ast.Aggregate):
        return lambda ex, env: ex._eval_aggregate(expr, env)
    if isinstance(expr, ast.Query):
        # expression-position subquery: scope depends on the runtime env,
        # so binding happens per evaluation exactly as interpreted
        return lambda ex, env: ex._eval_expression(expr, env)
    raise CompileError(f"unhandled expression {expr!r}")


# ---------------------------------------------------------------------------
# predicates
# ---------------------------------------------------------------------------


def _compile_predicate(pred: ast.Predicate) -> Callable[[Executor, dict], bool]:
    if isinstance(pred, ast.BoolOp):
        fns = tuple(_compile_predicate(p) for p in pred.operands)
        if pred.op == "AND":
            return _and_all(fns)

        def f_or(ex: Executor, env: dict) -> bool:
            for fn in fns:
                if fn(ex, env):
                    return True
            return False

        return f_or
    if isinstance(pred, ast.Not):
        inner = _compile_predicate(pred.operand)
        return lambda ex, env: not inner(ex, env)
    if isinstance(pred, ast.Quantifier):
        return _compile_quantifier(pred)
    if isinstance(pred, ast.Contains):
        subject_fn = _compile_expression(pred.subject)
        regex = _compile_mask(pred.pattern)
        negated = pred.negated
        search = regex.search

        def f_contains(ex: Executor, env: dict) -> bool:
            subject = _unwrap_single_attribute(subject_fn(ex, env))
            matched = isinstance(subject, str) and search(subject) is not None
            return matched != negated

        return f_contains
    if isinstance(pred, ast.IsNull):
        subject_fn = _compile_expression(pred.subject)
        negated = pred.negated

        def f_isnull(ex: Executor, env: dict) -> bool:
            return (_unwrap_single_attribute(subject_fn(ex, env)) is None) != negated

        return f_isnull
    if isinstance(pred, ast.Comparison):
        left = _compile_expression(pred.left)
        right = _compile_expression(pred.right)
        op = pred.op
        return lambda ex, env: compare(op, left(ex, env), right(ex, env))
    raise CompileError(f"unhandled predicate {pred!r}")


def _and_all(
    fns: tuple[Callable[[Executor, dict], bool], ...]
) -> Callable[[Executor, dict], bool]:
    if len(fns) == 1:
        return fns[0]

    def f_and(ex: Executor, env: dict) -> bool:
        for fn in fns:
            if not fn(ex, env):
                return False
        return True

    return f_and


def _compile_quantifier(pred: ast.Quantifier) -> Callable[[Executor, dict], bool]:
    body_fn = _compile_predicate(pred.body)
    var = pred.var
    exists = pred.kind == "EXISTS"
    # parity with the interpreter: only EXISTS hands its body to the
    # provider for index-nested-loop candidates
    crange = _CompiledRange(
        ast.Range(var=var, source=pred.source),
        pred.body if exists else None,
    )

    def f_quant(ex: Executor, env: dict) -> bool:
        rows = crange.iterate(ex, env)
        prev = env.get(var, _MISSING)
        try:
            if exists:
                for row in rows:
                    env[var] = row
                    if body_fn(ex, env):
                        return True
                return False
            for row in rows:
                env[var] = row
                if not body_fn(ex, env):
                    return False
            return True
        finally:
            if prev is _MISSING:
                env.pop(var, None)
            else:
                env[var] = prev

    return f_quant


# ---------------------------------------------------------------------------
# ranges
# ---------------------------------------------------------------------------


def _join_candidates(
    var: str, where: Optional[ast.Predicate]
) -> tuple[tuple[str, Callable[[Executor, dict], Any]], ...]:
    """Pre-resolved index-nested-loop probes, mirroring the interpreter's
    ``_join_lookup`` conjunct scan order exactly."""
    if where is None:
        return ()
    from repro.query.planner import _flatten_and

    conjuncts = _flatten_and(where)
    if conjuncts is None:
        return ()
    out: list[tuple[str, Callable[[Executor, dict], Any]]] = []
    for conjunct in conjuncts:
        if not (isinstance(conjunct, ast.Comparison) and conjunct.op == "="):
            continue
        for mine, theirs in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not (
                isinstance(mine, ast.Path)
                and mine.var == var
                and len(mine.attribute_names) == 1
                and not mine.has_subscript
            ):
                continue
            attribute = mine.attribute_names[0]
            if isinstance(theirs, ast.Literal):
                value = theirs.value
                out.append((attribute, lambda ex, env, v=value: v))
            elif isinstance(theirs, ast.Path):
                fn = _compile_expression(theirs)
                theirs_var = theirs.var

                def getter(
                    ex: Executor, env: dict, fn=fn, theirs_var=theirs_var
                ) -> Any:
                    if theirs_var not in env:
                        return _SKIP
                    return _unwrap_single_attribute(fn(ex, env))

                out.append((attribute, getter))
    return tuple(out)


class _CompiledRange:
    """One FROM range: a stored table (with pre-resolved join-probe
    candidates) or a path into an outer variable."""

    __slots__ = ("var", "table", "asof", "path_fn", "dotted", "joins")

    def __init__(self, range_: ast.Range, where: Optional[ast.Predicate]):
        self.var = range_.var
        source = range_.source
        self.table = source.table
        self.asof = source.asof
        self.path_fn = None
        self.dotted = None
        self.joins: tuple = ()
        if source.table is None:
            assert source.path is not None
            self.path_fn = _compile_expression(source.path)
            self.dotted = source.path.dotted()
        elif source.asof is None:
            self.joins = _join_candidates(self.var, where)

    def iterate(self, ex: Executor, env: dict) -> Iterable[TupleValue]:
        if self.table is not None:
            provider = ex._provider
            if self.joins:
                lookup = getattr(provider, "lookup_rows", None)
                if lookup is not None:
                    for attribute, getter in self.joins:
                        value = getter(ex, env)
                        if (
                            value is _SKIP
                            or value is None
                            or isinstance(value, (TableValue, TupleValue))
                        ):
                            continue
                        rows = lookup(self.table, attribute, value)
                        if rows is not None:
                            profile = ex._profile
                            if profile is not None:
                                profile.join_lookups += 1
                            return rows
            return provider.iterate_table(self.table, self.asof)
        value = self.path_fn(ex, env)
        if not isinstance(value, TableValue):
            raise ExecutionError(
                f"range source {self.dotted!r} did not yield a table"
            )
        return value.rows


# ---------------------------------------------------------------------------
# projection and ordering
# ---------------------------------------------------------------------------


def _compile_projection(
    executor: Executor, query: ast.Query, schema: TableSchema
) -> Callable[[Executor, dict], TupleValue]:
    if query.select_star:
        names = schema.attribute_names
        var0 = query.ranges[0].var
        trusted = TupleValue.trusted

        def project_star(ex: Executor, env: dict) -> TupleValue:
            row = env[var0]
            # values come from a same-shape validated tuple: no re-check
            return trusted(schema, {name: row[name] for name in names})

        return project_star

    makers: list[tuple] = []
    for attr, item in zip(schema.attributes, query.select):
        if isinstance(item.expr, ast.Query):
            assert attr.table is not None
            sub = CompiledQuery(executor, item.expr, attr.table)
            makers.append(
                (attr.name, lambda ex, env, s=sub: s.execute(ex, env), True, None)
            )
        else:
            fn = _compile_expression(item.expr)
            makers.append((attr.name, fn, False, attr.table if attr.is_table else None))

    def project(ex: Executor, env: dict) -> TupleValue:
        values: dict[str, Any] = {}
        for name, fn, is_query, table_schema in makers:
            value = fn(ex, env)
            if not is_query:
                value = _unwrap_single_attribute(value)
                if table_schema is not None and isinstance(value, TableValue):
                    value = _retag_table(value, table_schema)
            values[name] = value
        # the validated constructor on purpose: select items coerce (an
        # INT literal into a FLOAT output column) and error exactly like
        # the interpreted projection
        return TupleValue(schema, values)

    return project


def _compile_order_keys(
    query: ast.Query,
) -> tuple[Callable[[Executor, dict], Any], ...]:
    fns = []
    for item in query.order_by:
        fn = _compile_expression(item.expr)
        fns.append(
            lambda ex, env, f=fn: _sortable(_unwrap_single_attribute(f(ex, env)))
        )
    return tuple(fns)


# ---------------------------------------------------------------------------
# columnar flat scans
# ---------------------------------------------------------------------------


class _ColumnarPlan:
    """Factories (per chunk: columns dict -> per-row callables) for a
    single-range flat-table scan."""

    __slots__ = ("pred_factory", "row_factory", "key_factory")

    def __init__(self, pred_factory, row_factory, key_factory):
        self.pred_factory = pred_factory
        self.row_factory = row_factory
        self.key_factory = key_factory


def _columnar_attr(expr: Any, var: str, atomic: set) -> Optional[str]:
    if (
        isinstance(expr, ast.Path)
        and expr.var == var
        and len(expr.steps) == 1
        and expr.steps[0].name in atomic
        and expr.steps[0].subscript is None
    ):
        return expr.steps[0].name
    return None


def _columnar_predicate(pred: ast.Predicate, var: str, atomic: set):
    """``make(columns) -> test(i)`` for one predicate, or ``None`` when a
    sub-shape is not columnar (the whole plan then falls back to rows).
    Semantics mirror ``compare()``/``masked_match`` exactly."""
    if isinstance(pred, ast.BoolOp):
        subs = [_columnar_predicate(p, var, atomic) for p in pred.operands]
        if any(s is None for s in subs):
            return None
        conjunctive = pred.op == "AND"

        def make_bool(columns):
            tests = [s(columns) for s in subs]
            if conjunctive:

                def test_and(i):
                    for t in tests:
                        if not t(i):
                            return False
                    return True

                return test_and

            def test_or(i):
                for t in tests:
                    if t(i):
                        return True
                return False

            return test_or

        return make_bool
    if isinstance(pred, ast.Not):
        sub = _columnar_predicate(pred.operand, var, atomic)
        if sub is None:
            return None

        def make_not(columns):
            t = sub(columns)
            return lambda i: not t(i)

        return make_not
    if isinstance(pred, ast.IsNull):
        name = _columnar_attr(pred.subject, var, atomic)
        if name is None:
            return None
        negated = pred.negated

        def make_isnull(columns):
            col = columns[name]
            return lambda i: (col[i] is None) != negated

        return make_isnull
    if isinstance(pred, ast.Contains):
        name = _columnar_attr(pred.subject, var, atomic)
        if name is None:
            return None
        search = _compile_mask(pred.pattern).search
        negated = pred.negated

        def make_contains(columns):
            col = columns[name]

            def test(i):
                value = col[i]
                matched = isinstance(value, str) and search(value) is not None
                return matched != negated

            return test

        return make_contains
    if isinstance(pred, ast.Comparison):
        left_name = _columnar_attr(pred.left, var, atomic)
        right_name = _columnar_attr(pred.right, var, atomic)
        op = pred.op
        if left_name is not None and isinstance(pred.right, ast.Literal):
            return _columnar_leaf(left_name, op, pred.right.value)
        if right_name is not None and isinstance(pred.left, ast.Literal):
            return _columnar_leaf(right_name, _MIRROR[op], pred.left.value)
        if left_name is not None and right_name is not None:

            def make_cols(columns):
                a = columns[left_name]
                b = columns[right_name]
                return lambda i: compare(op, a[i], b[i])

            return make_cols
        if isinstance(pred.left, ast.Literal) and isinstance(pred.right, ast.Literal):
            constant = compare(op, pred.left.value, pred.right.value)
            return lambda columns: (lambda i: constant)
        return None
    return None  # quantifiers etc. — not columnar


def _columnar_leaf(name: str, op: str, value: Any):
    """A specialized ``column <op> literal`` test with full ``compare()``
    parity: NULL is false, bool never equals a number, ordering type
    mismatches raise ExecutionError."""
    if value is None:
        return lambda columns: (lambda i: False)
    value_is_bool = isinstance(value, bool)
    if op == "=":

        def make_eq(columns):
            col = columns[name]

            def test(i):
                v = col[i]
                if v is None or isinstance(v, bool) != value_is_bool:
                    return False
                return v == value

            return test

        return make_eq
    if op == "<>":

        def make_ne(columns):
            col = columns[name]

            def test(i):
                v = col[i]
                if v is None:
                    return False
                if isinstance(v, bool) != value_is_bool:
                    return True
                return v != value

            return test

        return make_ne

    def make_ord(columns):
        col = columns[name]

        def test(i):
            v = col[i]
            if v is None:
                return False
            if isinstance(v, bool) != value_is_bool:
                return False
            try:
                if op == "<":
                    return bool(v < value)
                if op == "<=":
                    return bool(v <= value)
                if op == ">":
                    return bool(v > value)
                return bool(v >= value)
            except TypeError as exc:
                raise ExecutionError(
                    f"cannot compare {v!r} with {value!r}"
                ) from exc

        return test

    return make_ord


def _columnar_projection(query: ast.Query, schema: TableSchema, var: str, atomic: set):
    trusted = TupleValue.trusted
    if query.select_star:
        names = list(schema.attribute_names)

        def make_star(columns):
            pairs = [(name, columns[name]) for name in names]

            def build(i):
                return trusted(schema, {name: col[i] for name, col in pairs})

            return build

        return make_star
    specs: list[tuple[str, bool, Any]] = []
    for attr, item in zip(schema.attributes, query.select):
        if attr.is_table:
            return None
        name = _columnar_attr(item.expr, var, atomic)
        if name is not None:
            specs.append((attr.name, True, name))
        elif isinstance(item.expr, ast.Literal):
            specs.append((attr.name, False, item.expr.value))
        else:
            return None

    def make(columns):
        resolved = [
            (out, columns[payload] if is_col else None, payload)
            for out, is_col, payload in specs
        ]

        def build(i):
            return trusted(
                schema,
                {
                    out: (col[i] if col is not None else payload)
                    for out, col, payload in resolved
                },
            )

        return build

    return make


def _columnar_keys(query: ast.Query, var: str, atomic: set):
    names = []
    for item in query.order_by:
        name = _columnar_attr(item.expr, var, atomic)
        if name is None:
            return None
        names.append(name)

    def make(columns):
        cols = [columns[name] for name in names]
        return lambda i: tuple(_sortable(col[i]) for col in cols)

    return make


def _compile_columnar(
    executor: Executor, query: ast.Query, schema: TableSchema
) -> Optional[_ColumnarPlan]:
    """A columnar plan for a single-range flat-table scan, or ``None``
    (the row loop handles everything else).  Static shape only — the
    runtime gate is ``Database.scan_chunks`` (it returns ``None`` under
    sessions, snapshots, SYS views, temporal tables...)."""
    if len(query.ranges) != 1:
        return None
    range_ = query.ranges[0]
    source = range_.source
    if source.table is None or source.asof is not None:
        return None
    try:
        src_schema = executor._provider.table_schema(source.table)
    except Exception:
        return None
    if src_schema is None or not src_schema.is_flat:
        return None
    var = range_.var
    atomic = {attr.name for attr in src_schema.attributes if attr.is_atomic}
    pred_factory = None
    if query.where is not None:
        pred_factory = _columnar_predicate(query.where, var, atomic)
        if pred_factory is None:
            return None
    row_factory = _columnar_projection(query, schema, var, atomic)
    if row_factory is None:
        return None
    key_factory = None
    if query.order_by:
        key_factory = _columnar_keys(query, var, atomic)
        if key_factory is None:
            return None
    return _ColumnarPlan(pred_factory, row_factory, key_factory)


# ---------------------------------------------------------------------------
# the compiled statement
# ---------------------------------------------------------------------------


class CompiledQuery:
    """One statement, compiled: ranges, residual-capable WHERE closures,
    projection, order keys, and (when shapes allow) a columnar plan."""

    __slots__ = (
        "query",
        "schema",
        "ranges",
        "where_fn",
        "conjuncts",
        "project_fn",
        "order_fns",
        "columnar",
    )

    def __init__(self, executor: Executor, query: ast.Query, schema: TableSchema):
        from repro.query.planner import _flatten_and

        self.query = query
        self.schema = schema
        self.ranges = [_CompiledRange(r, query.where) for r in query.ranges]
        # per-conjunct closures let settled conjuncts drop out of the
        # residual predicate without recompiling anything
        self.conjuncts: Optional[list[tuple[ast.Predicate, Callable]]] = None
        if query.where is None:
            self.where_fn = None
        else:
            flat = _flatten_and(query.where)
            if flat is None:
                self.where_fn = _compile_predicate(query.where)
            else:
                pairs = [(node, _compile_predicate(node)) for node in flat]
                self.conjuncts = pairs
                self.where_fn = _and_all(tuple(fn for _node, fn in pairs))
        self.project_fn = _compile_projection(executor, query, schema)
        self.order_fns = _compile_order_keys(query)
        self.columnar = _compile_columnar(executor, query, schema)

    # -- residual predicates -------------------------------------------------

    def _residual(self, settled: list) -> Optional[Callable]:
        """The WHERE closure minus index-settled conjuncts (matched by
        node identity — the plan extracted them from this same AST)."""
        if self.conjuncts is None:
            return self.where_fn
        settled_ids = {id(node) for node in settled}
        rest = tuple(
            fn for node, fn in self.conjuncts if id(node) not in settled_ids
        )
        if len(rest) == len(self.conjuncts):
            return self.where_fn
        if not rest:
            return None
        return _and_all(rest)

    # -- execution -----------------------------------------------------------

    def execute(
        self, ex: Executor, env: dict, is_top: bool = False
    ) -> TableValue:
        query = self.query
        profile = ex._profile
        ranges = self.ranges
        first_iter = None
        sort_elided = False
        settled: list = []
        if is_top and ranges and ranges[0].table is not None:
            provider = ex._provider
            r0 = ranges[0]
            first_iter = provider.iterate_table_for_query(
                r0.table, r0.asof, query, r0.var
            )
            plan = getattr(provider, "last_plan", None)
            if plan is not None:
                settled = getattr(plan, "settled", None) or []
                sort_elided = bool(query.order_by) and bool(
                    getattr(plan, "sort_elided", False)
                )
            elif self.columnar is not None:
                scan_chunks = getattr(provider, "scan_chunks", None)
                if scan_chunks is not None:
                    chunks = scan_chunks(r0.table)
                    if chunks is not None:
                        return self._execute_columnar(ex, chunks, is_top)
        where_fn = self.where_fn
        if settled:
            where_fn = self._residual(settled)
            report = ex.exec_report
            if report is not None:
                report.settled_conjuncts += len(settled)

        result = TableValue(self.schema)
        rows_out = result.rows
        keys_out: list[tuple] = []
        collect_keys = bool(query.order_by) and not sort_elided
        order_fns = self.order_fns
        project = self.project_fn
        n = len(ranges)

        def emit() -> None:
            if where_fn is not None:
                if profile is not None:
                    profile.predicate_evals += 1
                if not where_fn(ex, env):
                    return
            if profile is not None and is_top:
                profile.rows_emitted += 1
            rows_out.append(project(ex, env))
            if collect_keys:
                keys_out.append(tuple(fn(ex, env) for fn in order_fns))

        def loop(i: int) -> None:
            if i == n:
                emit()
                return
            crange = ranges[i]
            if i == 0 and first_iter is not None:
                rows = first_iter
            else:
                rows = crange.iterate(ex, env)
            var = crange.var
            prev = env.get(var, _MISSING)
            try:
                if profile is not None:
                    scanned = profile.rows_scanned
                    count = scanned.get(var, 0)
                    for row in rows:
                        count += 1
                        env[var] = row
                        loop(i + 1)
                    scanned[var] = count
                else:
                    for row in rows:
                        env[var] = row
                        loop(i + 1)
            finally:
                if prev is _MISSING:
                    env.pop(var, None)
                else:
                    env[var] = prev

        loop(0)
        self._finish(result, keys_out, sort_elided)
        return result

    def _execute_columnar(
        self, ex: Executor, chunks: Iterable[tuple[int, dict]], is_top: bool
    ) -> TableValue:
        query = self.query
        profile = ex._profile
        plan = self.columnar
        assert plan is not None
        result = TableValue(self.schema)
        rows_out = result.rows
        keys_out: list[tuple] = []
        collect_keys = bool(query.order_by)
        report = ex.exec_report
        var = self.ranges[0].var
        emitted = 0
        for count, columns in chunks:
            if report is not None:
                report.columnar_chunks += 1
            test = (
                plan.pred_factory(columns)
                if plan.pred_factory is not None
                else None
            )
            build = plan.row_factory(columns)
            key_of = plan.key_factory(columns) if collect_keys else None
            if profile is not None:
                scanned = profile.rows_scanned
                scanned[var] = scanned.get(var, 0) + count
                if test is not None:
                    # every row is tested, exactly like the row loop
                    profile.predicate_evals += count
            if test is None:
                for i in range(count):
                    rows_out.append(build(i))
                    if key_of is not None:
                        keys_out.append(key_of(i))
                emitted += count
            else:
                for i in range(count):
                    if not test(i):
                        continue
                    rows_out.append(build(i))
                    if key_of is not None:
                        keys_out.append(key_of(i))
                    emitted += 1
        if profile is not None and is_top:
            profile.rows_emitted += emitted
        self._finish(result, keys_out, sort_elided=False)
        return result

    def _finish(
        self, result: TableValue, keys_out: list[tuple], sort_elided: bool
    ) -> None:
        """Shared ORDER BY / DISTINCT epilogue — the same algorithms (and
        metric) as the interpreted executor, so row order is identical."""
        query = self.query
        if query.order_by:
            if sort_elided:
                if METRICS.enabled:
                    METRICS.inc("query.sorts_elided")
            else:
                pairs = list(zip(result.rows, keys_out))
                for index in range(len(query.order_by) - 1, -1, -1):
                    descending = query.order_by[index].descending
                    pairs.sort(
                        key=lambda pair, index=index: pair[1][index],
                        reverse=descending,
                    )
                result.rows = [row for row, _keys in pairs]
        if query.distinct:
            seen: set = set()
            unique = []
            for row in result.rows:
                key = row.canonical()
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            result.rows = unique
