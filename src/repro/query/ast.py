"""Abstract syntax trees for the NF2 query language."""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # int, float, str, bool, date, or None


@dataclass(frozen=True)
class PathStep:
    """One step of a path: an attribute name, optionally subscripted.

    ``subscript`` is the *1-based* list index of the paper's
    ``x.AUTHORS[1]`` notation (may apply to the variable itself, via a
    leading step with ``name=None``).
    """

    name: Optional[str]
    subscript: Optional[int] = None


@dataclass(frozen=True)
class Path:
    """``var.attr1[i].attr2...`` — a tuple-variable rooted path."""

    var: str
    steps: tuple[PathStep, ...] = ()

    def dotted(self) -> str:
        parts = [self.var]
        for step in self.steps:
            if step.name is not None:
                parts.append(step.name)
            if step.subscript is not None:
                parts[-1] += f"[{step.subscript}]"
        return ".".join(parts)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.steps if s.name is not None)

    @property
    def has_subscript(self) -> bool:
        return any(s.subscript is not None for s in self.steps)


@dataclass(frozen=True)
class Comparison:
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class Contains:
    """``expr CONTAINS 'pattern'`` — masked text search with ``*``/``?``."""

    subject: "Expression"
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    subject: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class BoolOp:
    op: str  # 'AND' | 'OR'
    operands: tuple["Predicate", ...]


@dataclass(frozen=True)
class Not:
    operand: "Predicate"


@dataclass(frozen=True)
class Quantifier:
    """``EXISTS v IN source: body`` / ``ALL v IN source: body``."""

    kind: str  # 'EXISTS' | 'ALL'
    var: str
    source: "Source"
    body: "Predicate"


@dataclass(frozen=True)
class Aggregate:
    """``COUNT(x.PROJECTS)``, ``SUM(x.EQUIP.QU)``, ``MAX(x.PROJECTS.MEMBERS.EMPNO)``.

    The argument path may traverse any number of subtable levels; values
    are flattened across them.  ``COUNT`` also accepts a plain table
    argument (counting its tuples) or a subquery.
    """

    function: str  # 'COUNT' | 'SUM' | 'AVG' | 'MIN' | 'MAX'
    argument: "Expression"


Predicate = Union[Comparison, Contains, IsNull, BoolOp, Not, Quantifier]
Expression = Union[Literal, Path, "Query", Aggregate]


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Source:
    """The right-hand side of ``var IN ...``: either a stored table name or
    a path into an already-bound variable; optionally time-travelled."""

    table: Optional[str] = None
    path: Optional[Path] = None
    asof: Optional[datetime.date] = None

    def describe(self) -> str:
        base = self.table if self.table is not None else self.path.dotted()  # type: ignore[union-attr]
        if self.asof is not None:
            return f"{base} ASOF {self.asof.isoformat()}"
        return base


@dataclass(frozen=True)
class Range:
    """``var IN source`` in a FROM clause."""

    var: str
    source: Source


@dataclass(frozen=True)
class SelectItem:
    """One output attribute.

    * plain expression: name derived from the path's last attribute (or
      ``AS`` alias);
    * ``NAME = ( subquery )``: a table-valued output attribute (the
      paper's mechanism for describing nested result structure);
    * ``NAME = expr``: an explicitly renamed atomic attribute.
    """

    expr: Expression
    alias: Optional[str] = None

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, Path):
            names = self.expr.attribute_names
            return names[-1] if names else self.expr.var
        if isinstance(self.expr, Query):
            return "QUERY"
        return "EXPR"


@dataclass(frozen=True)
class OrderItem:
    expr: Expression
    descending: bool = False


@dataclass(frozen=True)
class Query:
    select: tuple[SelectItem, ...]  # empty tuple means SELECT *
    ranges: tuple[Range, ...]
    where: Optional[Predicate] = None
    select_star: bool = False
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()


# ---------------------------------------------------------------------------
# DML / DDL statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TupleLiteral:
    values: tuple["ValueLiteral", ...]


@dataclass(frozen=True)
class TableLiteral:
    rows: tuple[TupleLiteral, ...]
    ordered: bool


ValueLiteral = Union[Literal, TupleLiteral, TableLiteral]


@dataclass(frozen=True)
class InsertStatement:
    table: str
    rows: tuple[TupleLiteral, ...]


@dataclass(frozen=True)
class UpdateStatement:
    table: str
    var: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class DeleteStatement:
    table: str
    var: str
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class CreateTableStatement:
    ddl_text: str  # re-parsed by the model-layer DDL parser
    versioned: bool = False


@dataclass(frozen=True)
class DropTableStatement:
    table: str


@dataclass(frozen=True)
class CreateIndexStatement:
    name: str
    table: str
    attribute_path: tuple[str, ...]
    text: bool = False  # CREATE TEXT INDEX


@dataclass(frozen=True)
class DropIndexStatement:
    name: str


@dataclass(frozen=True)
class SubInsertStatement:
    """``INSERT INTO y.MEMBERS FROM x IN DEPARTMENTS, y IN x.PROJECTS
    WHERE ... VALUES (...)`` — insert subobjects into subtable instances
    selected by the FROM/WHERE bindings."""

    target: Path
    ranges: tuple[Range, ...]
    rows: tuple[TupleLiteral, ...]
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class SubDeleteStatement:
    """``DELETE z FROM x IN DEPARTMENTS, y IN x.PROJECTS, z IN y.MEMBERS
    WHERE ...`` — delete the subobjects the target variable ranges over."""

    var: str
    ranges: tuple[Range, ...]
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class SubUpdateStatement:
    """``UPDATE z FROM ... SET FUNCTION = '...' WHERE ...`` — update
    atomic attributes of the subobjects the target variable ranges over."""

    var: str
    ranges: tuple[Range, ...]
    assignments: tuple[tuple[str, "Expression"], ...]
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class AlterTableStatement:
    """ALTER TABLE <name> ADD <attr-def> | DROP ATTRIBUTE <name> |
    RENAME ATTRIBUTE <old> TO <new>.

    Attribute paths are dotted to address nested levels, e.g.
    ``ADD PROJECTS.PRIORITY INT``.
    """

    table: str
    action: str  # 'add' | 'drop' | 'rename'
    attribute_path: tuple[str, ...]
    #: for 'add': the DDL fragment of the new attribute (parsed by the
    #: model layer); for 'rename': the new name
    payload: Optional[str] = None


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <statement>``.

    Plain EXPLAIN describes the access plan without running the statement;
    EXPLAIN ANALYZE executes it under observability and reports actual
    cardinalities, phase timings, and engine/buffer counter deltas.
    """

    target: "Statement"
    analyze: bool = False


Statement = Union[
    "AlterTableStatement",
    "ExplainStatement",
    Query,
    InsertStatement,
    UpdateStatement,
    DeleteStatement,
    CreateTableStatement,
    DropTableStatement,
    CreateIndexStatement,
    DropIndexStatement,
]
