"""Access-path selection.

The planner inspects a query's WHERE clause for conditions it can answer
from indexes on the first FROM range's stored table, and — following
Section 4.2 — exploits the *addressing mode* of each index:

* DATA_TID indexes are never used to retrieve objects (their addresses
  cannot reach the owning object — the paper's first, rejected approach);
* ROOT_TID indexes restrict the candidate *objects*;
* HIERARCHICAL indexes additionally let conjunctive conditions anchored in
  the same complex subobject be combined *purely on index information*:
  two addresses agreeing on their first ``k`` components refer to the same
  subobject at level ``k`` (the paper's ``P2 = F2`` argument).

The executor always re-verifies the full WHERE clause on the candidates, so
planning is purely an optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.catalog.catalog import TableEntry
from repro.index.addresses import AddressingMode, HierarchicalAddress
from repro.index.manager import FlatIndex, NF2Index
from repro.index.text import TextIndex
from repro.query import ast
from repro.storage.tid import TID


@dataclass(frozen=True)
class IndexCondition:
    """An index-answerable conjunct.

    ``attribute_path`` is the path from the table's top level to the atomic
    attribute; ``binding`` names the quantifier variables introduced along
    the way — two conditions sharing a binding prefix are anchored in the
    same complex subobject and may be prefix-joined.
    """

    attribute_path: tuple[str, ...]
    binding: tuple[str, ...]
    kind: str  # 'eq' | 'contains'
    value: Any

    @property
    def levels(self) -> int:
        """Element levels below the root that the condition descends."""
        return len(self.attribute_path) - 1


def extract_conditions(query: ast.Query, var: str) -> Optional[list[IndexCondition]]:
    """Index-answerable conjuncts of the WHERE clause, anchored at *var*.

    Returns ``None`` if the clause's top level is not a conjunction we can
    partially cover (e.g. an OR) — callers then scan.
    """
    if query.where is None:
        return []
    conjuncts = _flatten_and(query.where)
    if conjuncts is None:
        return None
    conditions: list[IndexCondition] = []
    for conjunct in conjuncts:
        conditions.extend(_conditions_of(conjunct, var, prefix=(), binding=()))
    return conditions


def _flatten_and(predicate: ast.Predicate) -> Optional[list[ast.Predicate]]:
    if isinstance(predicate, ast.BoolOp):
        if predicate.op != "AND":
            return None
        out: list[ast.Predicate] = []
        for operand in predicate.operands:
            inner = _flatten_and(operand)
            if inner is None:
                return None
            out.extend(inner)
        return out
    return [predicate]


def _conditions_of(
    predicate: ast.Predicate,
    var: str,
    prefix: tuple[str, ...],
    binding: tuple[str, ...],
) -> list[IndexCondition]:
    """Conditions contributed by one conjunct.  *var* is the variable whose
    tuples we are filtering at this nesting level; *prefix* is the subtable
    path taken so far; *binding* the quantifier variables on that path."""
    if isinstance(predicate, ast.Comparison):
        condition = _comparison_condition(predicate, var, prefix, binding)
        return [condition] if condition else []
    if isinstance(predicate, ast.Contains) and not predicate.negated:
        subject = predicate.subject
        if (
            isinstance(subject, ast.Path)
            and subject.var == var
            and not subject.has_subscript
            and subject.attribute_names
        ):
            return [
                IndexCondition(
                    attribute_path=prefix + subject.attribute_names,
                    binding=binding,
                    kind="contains",
                    value=predicate.pattern,
                )
            ]
        return []
    if isinstance(predicate, ast.Quantifier) and predicate.kind == "EXISTS":
        source = predicate.source
        if (
            source.path is not None
            and source.path.var == var
            and not source.path.has_subscript
            and len(source.path.attribute_names) >= 1
        ):
            new_prefix = prefix + source.path.attribute_names
            # Bindings are keyed per quantifier *instance*: two sibling
            # EXISTS clauses reusing a variable name must not prefix-join.
            new_binding = binding + (f"{predicate.var}#{id(predicate)}",)
            inner = _flatten_and(predicate.body)
            if inner is None:
                return []
            out: list[IndexCondition] = []
            for conjunct in inner:
                out.extend(
                    _conditions_of(conjunct, predicate.var, new_prefix, new_binding)
                )
            return out
        return []
    if isinstance(predicate, ast.BoolOp) and predicate.op == "AND":
        out = []
        for operand in predicate.operands:
            out.extend(_conditions_of(operand, var, prefix, binding))
        return out
    return []


_MIRRORED_OPS = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _comparison_condition(
    predicate: ast.Comparison,
    var: str,
    prefix: tuple[str, ...],
    binding: tuple[str, ...],
) -> Optional[IndexCondition]:
    if predicate.op not in _MIRRORED_OPS:
        return None
    sides = [
        (predicate.left, predicate.right, predicate.op),
        (predicate.right, predicate.left, _MIRRORED_OPS[predicate.op]),
    ]
    for path_side, literal_side, op in sides:
        if (
            isinstance(path_side, ast.Path)
            and path_side.var == var
            and not path_side.has_subscript
            and len(path_side.attribute_names) == 1
            and isinstance(literal_side, ast.Literal)
            and literal_side.value is not None
        ):
            if op == "=":
                return IndexCondition(
                    attribute_path=prefix + path_side.attribute_names,
                    binding=binding,
                    kind="eq",
                    value=literal_side.value,
                )
            return IndexCondition(
                attribute_path=prefix + path_side.attribute_names,
                binding=binding,
                kind="range",
                value=(op, literal_side.value),
            )
    return None


# ---------------------------------------------------------------------------
# candidate selection
# ---------------------------------------------------------------------------


@dataclass
class PlanReport:
    """What the planner decided — surfaced for tests and benchmarks."""

    used_indexes: list[str]
    prefix_joins: int = 0

    @property
    def used_any(self) -> bool:
        return bool(self.used_indexes)


def candidate_roots(
    entry: TableEntry, conditions: list[IndexCondition]
) -> tuple[Optional[list[TID]], PlanReport]:
    """Object roots that can possibly satisfy the indexed conditions.

    ``None`` means no index applied (scan).  The candidate set is always a
    superset of the true result; the executor re-verifies.
    """
    report = PlanReport(used_indexes=[])
    matched: list[tuple[IndexCondition, dict[TID, list[HierarchicalAddress]], bool]] = []
    for condition in conditions:
        hit = _lookup(entry, condition)
        if hit is None:
            continue
        index_name, by_root, hierarchical = hit
        report.used_indexes.append(index_name)
        matched.append((condition, by_root, hierarchical))
    if not matched:
        return None, report

    roots: Optional[set[TID]] = None
    for _condition, by_root, _hierarchical in matched:
        keys = set(by_root)
        roots = keys if roots is None else roots & keys
    assert roots is not None

    # Prefix joins: conditions sharing a quantifier-binding prefix must hit
    # the same complex subobject at the shared levels (the paper's P2=F2).
    for i in range(len(matched)):
        for j in range(i + 1, len(matched)):
            cond_a, by_a, hier_a = matched[i]
            cond_b, by_b, hier_b = matched[j]
            shared = _shared_binding(cond_a.binding, cond_b.binding)
            if shared == 0 or not (hier_a and hier_b):
                continue
            report.prefix_joins += 1
            roots = {
                root
                for root in roots
                if any(
                    a.shares_prefix(b, shared)
                    for a in by_a.get(root, ())
                    for b in by_b.get(root, ())
                )
            }
    ordered = sorted(roots, key=lambda tid: (tid.page, tid.slot))
    return ordered, report


def _lookup(
    entry: TableEntry, condition: IndexCondition
) -> Optional[tuple[str, dict[TID, list[HierarchicalAddress]], bool]]:
    """Find an index answering *condition*; returns (name, root→addresses,
    is_hierarchical)."""
    if condition.kind in ("eq", "range"):
        for name, index in entry.indexes.items():
            if isinstance(index, FlatIndex):
                if index.definition.attribute_path != condition.attribute_path:
                    continue
                by_root = {
                    tid: [] for tid in _index_hits(index, condition)
                }
                return name, by_root, False
            if not isinstance(index, NF2Index):
                continue
            if index.definition.attribute_path != condition.attribute_path:
                continue
            mode = index.definition.mode
            if mode is AddressingMode.DATA_TID:
                # Unusable for object retrieval (Section 4.2, first approach).
                continue
            by_root: dict[TID, list[HierarchicalAddress]] = {}
            for address in _index_hits(index, condition):
                if isinstance(address, HierarchicalAddress):
                    by_root.setdefault(address.root, []).append(address)
                else:
                    by_root.setdefault(address, [])
            return name, by_root, mode is AddressingMode.HIERARCHICAL
        return None
    # contains
    for name, index in entry.indexes.items():
        if not isinstance(index, TextIndex):
            continue
        if index.definition.attribute_path != condition.attribute_path:
            continue
        addresses = index.search(condition.value)
        if addresses is None:
            return None  # pattern cannot be narrowed
        by_root = {}
        for address in addresses:
            if isinstance(address, HierarchicalAddress):
                by_root.setdefault(address.root, []).append(address)
            else:
                by_root.setdefault(address, [])
        return name, by_root, False
    return None


def _index_hits(index, condition: IndexCondition) -> list:
    """All addresses matching an eq or range condition (B+-tree scan)."""
    if condition.kind == "eq":
        return index.search(condition.value)
    op, bound = condition.value
    if op == "<":
        scan = index.range(high=bound, include_high=False)
    elif op == "<=":
        scan = index.range(high=bound)
    elif op == ">":
        scan = index.range(low=bound, include_low=False)
    else:  # '>='
        scan = index.range(low=bound)
    hits = []
    for _key, addresses in scan:
        hits.extend(addresses)
    return hits


def _shared_binding(a: tuple[str, ...], b: tuple[str, ...]) -> int:
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return shared
