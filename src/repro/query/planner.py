"""Access-path selection.

The planner inspects a query's WHERE clause for conditions it can answer
from indexes on the first FROM range's stored table, and — following
Section 4.2 — exploits the *addressing mode* of each index:

* DATA_TID indexes are never used to retrieve objects (their addresses
  cannot reach the owning object — the paper's first, rejected approach);
* ROOT_TID indexes restrict the candidate *objects*;
* HIERARCHICAL indexes additionally let conjunctive conditions anchored in
  the same complex subobject be combined *purely on index information*:
  two addresses agreeing on their first ``k`` components refer to the same
  subobject at level ``k`` (the paper's ``P2 = F2`` argument).

Selection is *cost-based* (System R style — Selinger et al., SIGMOD
1979): every index applicable to a conjunct is scored on its maintained
statistics (``index/stats.py``), the cheapest wins, and HIERARCHICAL
beats ROOT_TID at equal selectivity so prefix joins stay available.
Matched conjuncts are intersected in ascending-selectivity order with an
early exit as soon as the candidate set collapses to ∅ — the remaining
indexes are never probed.  Candidate roots *stream* out of a generator
(Volcano-style — Graefe 1994) so they flow into object fetch and WHERE
re-verification without building intermediate lists, and a single-index
plan whose key order matches the query's ``ORDER BY`` announces
``sort_elided`` so the executor can skip the final sort.

The executor always re-verifies the full WHERE clause on the candidates, so
planning is purely an optimization.  See ``docs/PLANNER.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.catalog.catalog import TableEntry
from repro.index.addresses import AddressingMode, HierarchicalAddress, address_root
from repro.index.manager import FlatIndex, NF2Index
from repro.index.text import TextIndex
from repro.obs import METRICS
from repro.query import ast
from repro.storage.tid import TID


@dataclass(frozen=True)
class IndexCondition:
    """An index-answerable conjunct.

    ``attribute_path`` is the path from the table's top level to the atomic
    attribute; ``binding`` names the quantifier variables introduced along
    the way — two conditions sharing a binding prefix are anchored in the
    same complex subobject and may be prefix-joined.
    """

    attribute_path: tuple[str, ...]
    binding: tuple[str, ...]
    kind: str  # 'eq' | 'contains'
    value: Any

    @property
    def levels(self) -> int:
        """Element levels below the root that the condition descends."""
        return len(self.attribute_path) - 1


@dataclass(frozen=True)
class ConditionGroup:
    """One top-level WHERE conjunct with its extracted index conditions.

    ``exact`` marks a *lossless* decomposition: the candidate roots
    implied by the conditions are exactly the roots satisfying the
    conjunct — not merely a superset.  A plan that probes indexes for
    every condition of an exact group *settles* the conjunct on index
    information alone (Section 4.2): the executor can skip re-verifying
    it against decoded data subtuples.  CONTAINS narrows to a superset
    (word fragments), and IS NULL / OR / NOT / ALL / subscripted paths
    are not extracted at all, so none of those are ever exact.
    """

    predicate: ast.Predicate
    conditions: tuple[IndexCondition, ...]
    exact: bool


def extract_conditions(query: ast.Query, var: str) -> Optional[list[IndexCondition]]:
    """Index-answerable conjuncts of the WHERE clause, anchored at *var*.

    Returns ``None`` if the clause's top level is not a conjunction we can
    partially cover (e.g. an OR) — callers then scan.
    """
    groups = extract_condition_groups(query, var)
    if groups is None:
        return None
    return [condition for group in groups for condition in group.conditions]


def extract_condition_groups(
    query: ast.Query, var: str
) -> Optional[list[ConditionGroup]]:
    """Like :func:`extract_conditions`, but grouped per top-level WHERE
    conjunct and annotated with exactness (see :class:`ConditionGroup`)."""
    if query.where is None:
        return []
    conjuncts = _flatten_and(query.where)
    if conjuncts is None:
        return None
    groups: list[ConditionGroup] = []
    for conjunct in conjuncts:
        exact = _exact_conditions(conjunct, var, prefix=(), binding=())
        if exact is not None:
            groups.append(ConditionGroup(conjunct, tuple(exact), True))
        else:
            loose = _conditions_of(conjunct, var, prefix=(), binding=())
            groups.append(ConditionGroup(conjunct, tuple(loose), False))
    return groups


def _exact_conditions(
    predicate: ast.Predicate,
    var: str,
    prefix: tuple[str, ...],
    binding: tuple[str, ...],
) -> Optional[list[IndexCondition]]:
    """The conditions of one conjunct when — and only when — the conjunct
    decomposes *losslessly* into index conditions; ``None`` otherwise.

    Lossless shapes: an eq/range comparison between a plain single-step
    attribute path and a non-NULL literal, and an EXISTS quantifier over
    a subtable path whose body is itself a lossless conjunction.  Any
    other shape (CONTAINS, IS NULL, OR, NOT, ALL, expression operands)
    means index hits only bound the answer from above."""
    if isinstance(predicate, ast.Comparison):
        condition = _comparison_condition(predicate, var, prefix, binding)
        if condition is None:
            return None
        bound = condition.value if condition.kind == "eq" else condition.value[1]
        if isinstance(bound, bool):
            # a B+-tree probe would equate True with 1; compare() never
            # does — keep boolean literals out of exact settlement
            return None
        return [condition]
    if isinstance(predicate, ast.Quantifier) and predicate.kind == "EXISTS":
        source = predicate.source
        if not (
            source.path is not None
            and source.path.var == var
            and not source.path.has_subscript
            and len(source.path.attribute_names) >= 1
        ):
            return None
        new_prefix = prefix + source.path.attribute_names
        # the same per-instance binding key _conditions_of uses — the two
        # extractions must agree for prefix-join bookkeeping to line up
        new_binding = binding + (f"{predicate.var}#{id(predicate)}",)
        inner = _flatten_and(predicate.body)
        if inner is None:
            return None
        out: list[IndexCondition] = []
        for conjunct in inner:
            sub = _exact_conditions(conjunct, predicate.var, new_prefix, new_binding)
            if sub is None:
                return None
            out.extend(sub)
        return out
    return None


def _flatten_and(predicate: ast.Predicate) -> Optional[list[ast.Predicate]]:
    if isinstance(predicate, ast.BoolOp):
        if predicate.op != "AND":
            return None
        out: list[ast.Predicate] = []
        for operand in predicate.operands:
            inner = _flatten_and(operand)
            if inner is None:
                return None
            out.extend(inner)
        return out
    return [predicate]


def _conditions_of(
    predicate: ast.Predicate,
    var: str,
    prefix: tuple[str, ...],
    binding: tuple[str, ...],
) -> list[IndexCondition]:
    """Conditions contributed by one conjunct.  *var* is the variable whose
    tuples we are filtering at this nesting level; *prefix* is the subtable
    path taken so far; *binding* the quantifier variables on that path."""
    if isinstance(predicate, ast.Comparison):
        condition = _comparison_condition(predicate, var, prefix, binding)
        return [condition] if condition else []
    if isinstance(predicate, ast.Contains) and not predicate.negated:
        subject = predicate.subject
        if (
            isinstance(subject, ast.Path)
            and subject.var == var
            and not subject.has_subscript
            and subject.attribute_names
        ):
            return [
                IndexCondition(
                    attribute_path=prefix + subject.attribute_names,
                    binding=binding,
                    kind="contains",
                    value=predicate.pattern,
                )
            ]
        return []
    if isinstance(predicate, ast.Quantifier) and predicate.kind == "EXISTS":
        source = predicate.source
        if (
            source.path is not None
            and source.path.var == var
            and not source.path.has_subscript
            and len(source.path.attribute_names) >= 1
        ):
            new_prefix = prefix + source.path.attribute_names
            # Bindings are keyed per quantifier *instance*: two sibling
            # EXISTS clauses reusing a variable name must not prefix-join.
            new_binding = binding + (f"{predicate.var}#{id(predicate)}",)
            inner = _flatten_and(predicate.body)
            if inner is None:
                return []
            out: list[IndexCondition] = []
            for conjunct in inner:
                out.extend(
                    _conditions_of(conjunct, predicate.var, new_prefix, new_binding)
                )
            return out
        return []
    if isinstance(predicate, ast.BoolOp) and predicate.op == "AND":
        out = []
        for operand in predicate.operands:
            out.extend(_conditions_of(operand, var, prefix, binding))
        return out
    return []


_MIRRORED_OPS = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _comparison_condition(
    predicate: ast.Comparison,
    var: str,
    prefix: tuple[str, ...],
    binding: tuple[str, ...],
) -> Optional[IndexCondition]:
    if predicate.op not in _MIRRORED_OPS:
        return None
    sides = [
        (predicate.left, predicate.right, predicate.op),
        (predicate.right, predicate.left, _MIRRORED_OPS[predicate.op]),
    ]
    for path_side, literal_side, op in sides:
        if (
            isinstance(path_side, ast.Path)
            and path_side.var == var
            and not path_side.has_subscript
            and len(path_side.attribute_names) == 1
            and isinstance(literal_side, ast.Literal)
            and literal_side.value is not None
        ):
            if op == "=":
                return IndexCondition(
                    attribute_path=prefix + path_side.attribute_names,
                    binding=binding,
                    kind="eq",
                    value=literal_side.value,
                )
            return IndexCondition(
                attribute_path=prefix + path_side.attribute_names,
                binding=binding,
                kind="range",
                value=(op, literal_side.value),
            )
    return None


# ---------------------------------------------------------------------------
# candidate selection (cost-based)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IndexChoice:
    """One scored (conjunct → index) assignment."""

    condition: IndexCondition
    name: str
    index: Any
    estimate: float
    hierarchical: bool

    @property
    def sort_key(self) -> tuple:
        # cheaper first; HIERARCHICAL beats ROOT_TID/flat at equal
        # selectivity (prefix joins stay available); name breaks ties
        # deterministically.
        return (self.estimate, 0 if self.hierarchical else 1, self.name)


@dataclass
class PlanReport:
    """What the planner decided — surfaced for tests, EXPLAIN, and
    benchmarks.

    ``used_indexes`` lists the chosen index per matched conjunct in
    *intersection order* (ascending estimated selectivity — the most
    selective index comes first).  ``considered`` records every scored
    alternative as ``(index name, estimate)`` pairs.  ``actual_candidates``
    and ``early_exit`` are filled in while the candidate generator drains.
    """

    used_indexes: list[str]
    prefix_joins: int = 0
    #: every (index, estimate) pair the cost model scored
    considered: list[tuple[str, float]] = field(default_factory=list)
    #: estimated candidate objects (min over the matched conjuncts)
    estimated_candidates: Optional[float] = None
    #: candidates actually emitted by the streaming generator
    actual_candidates: int = 0
    #: the intersection collapsed to ∅ before all matched conjuncts were
    #: probed — the remaining index probes were skipped entirely
    early_exit: bool = False
    #: the chosen index yields rows in ORDER BY order; the executor may
    #: skip the final sort
    sort_elided: bool = False
    #: WHERE conjuncts (AST nodes) this plan settles on index information
    #: alone — every candidate root satisfies them, so the executor may
    #: skip re-evaluating them (the provider strips this list whenever
    #: deferred deindexing or concurrent writers could leave stale hits)
    settled: list = field(default_factory=list)

    @property
    def used_any(self) -> bool:
        return bool(self.used_indexes)


def choose_indexes(
    entry: TableEntry, conditions: list[IndexCondition]
) -> tuple[list[IndexChoice], list[tuple[str, float]]]:
    """Score all applicable indexes per conjunct and keep the cheapest.

    Returns the winning choices sorted in ascending-selectivity order
    (the intersection order) plus every scored alternative.
    """
    choices: list[IndexChoice] = []
    considered: list[tuple[str, float]] = []
    for condition in conditions:
        scored = _score_condition(entry, condition)
        considered.extend((c.name, c.estimate) for c in scored)
        if scored:
            choices.append(min(scored, key=lambda c: c.sort_key))
    choices.sort(key=lambda c: c.sort_key)
    return choices, considered


def _score_condition(
    entry: TableEntry, condition: IndexCondition
) -> list[IndexChoice]:
    """Every index that can answer *condition*, scored on statistics
    (no posting lists are fetched here)."""
    scored: list[IndexChoice] = []
    if condition.kind in ("eq", "range"):
        for name, index in entry.indexes.items():
            if isinstance(index, TextIndex):
                continue
            if index.definition.attribute_path != condition.attribute_path:
                continue
            hierarchical = False
            if isinstance(index, NF2Index):
                mode = index.definition.mode
                if mode is AddressingMode.DATA_TID:
                    # Unusable for object retrieval (Section 4.2, first
                    # approach).
                    continue
                hierarchical = mode is AddressingMode.HIERARCHICAL
            elif not isinstance(index, FlatIndex):
                continue
            stats = index.stats
            estimate = (
                stats.estimate_eq()
                if condition.kind == "eq"
                else stats.estimate_range()
            )
            scored.append(
                IndexChoice(condition, name, index, estimate, hierarchical)
            )
        return scored
    # contains: a text index that cannot narrow the pattern is *skipped*,
    # not a reason to abort — another text index (e.g. with a shorter
    # fragment length) may still apply.
    for name, index in entry.indexes.items():
        if not isinstance(index, TextIndex):
            continue
        if index.definition.attribute_path != condition.attribute_path:
            continue
        estimate = index.estimate(condition.value)
        if estimate is None:
            continue
        scored.append(
            IndexChoice(condition, name, index, float(estimate), False)
        )
    return scored


def candidate_roots(
    entry: TableEntry,
    conditions: list[IndexCondition],
    order_by: Optional[tuple[str, ...]] = None,
    groups: Optional[list[ConditionGroup]] = None,
) -> tuple[Optional[Iterator[TID]], PlanReport]:
    """Object roots that can possibly satisfy the indexed conditions.

    ``None`` means no index applied (scan).  Otherwise the first element
    is a *generator* streaming candidate root TIDs (the candidate set is
    always a superset of the true result; the executor re-verifies) and
    the report carries the cost-model decisions.  ``report.early_exit``
    and ``report.actual_candidates`` are finalized only once the
    generator is drained.

    *order_by*, when given, names a top-level attribute the caller wants
    rows ordered by (ascending).  A single-index plan on exactly that
    attribute emits candidates in index-key order and sets
    ``report.sort_elided``.

    *groups*, when given, lets the planner report which WHERE conjuncts
    the plan *settles* (``report.settled``): for an exact group whose
    conditions all won index probes, every streamed candidate provably
    satisfies the conjunct, so the executor can skip re-testing it.
    """
    choices, considered = choose_indexes(entry, conditions)
    report = PlanReport(used_indexes=[c.name for c in choices])
    report.considered = considered
    if not choices:
        return None, report
    report.estimated_candidates = min(c.estimate for c in choices)
    if groups:
        report.settled = _settled_conjuncts(groups, choices)
        if METRICS.enabled and report.settled:
            METRICS.inc("planner.conjuncts_settled", len(report.settled))
    if METRICS.enabled:
        METRICS.inc("planner.indexes_considered", len(considered))
        METRICS.inc("planner.indexes_chosen", len(choices))
    if (
        order_by is not None
        and len(choices) == 1
        and choices[0].condition.kind in ("eq", "range")
        and choices[0].index.definition.attribute_path == order_by
        and len(order_by) == 1
    ):
        report.sort_elided = True
        return _stream_key_order(choices[0], report), report
    return _stream_intersection(choices, report), report


def _settled_conjuncts(
    groups: list[ConditionGroup], choices: list[IndexChoice]
) -> list:
    """Conjunct AST nodes the chosen plan answers *exactly*.

    A group settles when its decomposition was lossless and every one of
    its conditions won an index:

    * one condition — any eq/range probe is exact for that conjunct
      (ROOT_TID and flat hits *are* the satisfying roots);
    * two conditions — only when both chose HIERARCHICAL indexes with a
      shared binding prefix: the pairwise prefix join then proves both
      hits land in the same subobject (the paper's ``P2 = F2``), which
      is precisely the conjunct's semantics;
    * three or more — never: pairwise prefix joins do not imply a single
      element satisfying all conditions jointly.
    """
    by_condition = {id(choice.condition): choice for choice in choices}
    settled: list = []
    for group in groups:
        if not group.exact or not group.conditions:
            continue
        chosen = [by_condition.get(id(c)) for c in group.conditions]
        if any(c is None for c in chosen):
            continue
        if len(chosen) == 1:
            settled.append(group.predicate)
        elif len(chosen) == 2 and all(c.hierarchical for c in chosen):
            shared = _shared_binding(
                chosen[0].condition.binding, chosen[1].condition.binding
            )
            if shared > 0:
                settled.append(group.predicate)
    return settled


def _stream_key_order(choice: IndexChoice, report: PlanReport) -> Iterator[TID]:
    """Candidates of a single-index plan in ascending key order (the
    B+-tree scan order) — lets the executor elide an ORDER BY sort."""
    seen: set[TID] = set()
    for address in _index_hits(choice.index, choice.condition):
        root = address_root(address)
        if root in seen:
            continue  # defensive: top-level attributes yield one entry/root
        seen.add(root)
        report.actual_candidates += 1
        yield root


def _stream_intersection(
    choices: list[IndexChoice], report: PlanReport
) -> Iterator[TID]:
    """Fetch postings per matched conjunct in ascending-selectivity order,
    intersect, prefix-join, and stream the surviving roots.

    Probing stops the moment the intersection collapses to ∅ — the
    remaining (less selective) indexes are never touched.
    """
    matched: list[tuple[IndexChoice, dict[TID, list[HierarchicalAddress]]]] = []
    roots: Optional[set[TID]] = None
    for position, choice in enumerate(choices):
        by_root = _fetch_by_root(choice)
        matched.append((choice, by_root))
        keys = set(by_root)
        roots = keys if roots is None else roots & keys
        if not roots:
            if position + 1 < len(choices):
                report.early_exit = True
                if METRICS.enabled:
                    METRICS.inc("planner.early_exits")
            return
    assert roots is not None

    # Prefix joins: conditions sharing a quantifier-binding prefix must hit
    # the same complex subobject at the shared levels (the paper's P2=F2).
    for i in range(len(matched)):
        for j in range(i + 1, len(matched)):
            choice_a, by_a = matched[i]
            choice_b, by_b = matched[j]
            shared = _shared_binding(
                choice_a.condition.binding, choice_b.condition.binding
            )
            if shared == 0 or not (choice_a.hierarchical and choice_b.hierarchical):
                continue
            report.prefix_joins += 1
            if METRICS.enabled:
                METRICS.inc("planner.prefix_joins")
            roots = {
                root
                for root in roots
                if any(
                    a.shares_prefix(b, shared)
                    for a in by_a.get(root, ())
                    for b in by_b.get(root, ())
                )
            }
    for tid in sorted(roots, key=lambda tid: (tid.page, tid.slot)):
        report.actual_candidates += 1
        yield tid


def _fetch_by_root(
    choice: IndexChoice,
) -> dict[TID, list[HierarchicalAddress]]:
    """Materialize one chosen index's postings grouped by object root.

    Hierarchical addresses keep their component lists (prefix joins need
    them); plain TIDs map to empty lists.
    """
    if choice.condition.kind in ("eq", "range"):
        addresses = _index_hits(choice.index, choice.condition)
    else:  # contains — the cost model only picks narrowing text indexes
        addresses = choice.index.search(choice.condition.value)
        assert addresses is not None
    by_root: dict[TID, list[HierarchicalAddress]] = {}
    for address in addresses:
        if isinstance(address, HierarchicalAddress):
            by_root.setdefault(address.root, []).append(address)
        else:
            by_root.setdefault(address, [])
    return by_root


def _index_hits(index, condition: IndexCondition) -> Iterator:
    """Addresses matching an eq or range condition, streamed in ascending
    key order (a B+-tree point probe or leaf-chain scan)."""
    if condition.kind == "eq":
        yield from index.search(condition.value)
        return
    op, bound = condition.value
    if op == "<":
        scan = index.range(high=bound, include_high=False)
    elif op == "<=":
        scan = index.range(high=bound)
    elif op == ">":
        scan = index.range(low=bound, include_low=False)
    else:  # '>='
        scan = index.range(low=bound)
    for _key, addresses in scan:
        yield from addresses


# ---------------------------------------------------------------------------
# first-match baseline (ablation only)
# ---------------------------------------------------------------------------


def candidate_roots_first_match(
    entry: TableEntry, conditions: list[IndexCondition]
) -> tuple[Optional[list[TID]], PlanReport]:
    """The pre-cost-model planner, kept as an A/B ablation baseline
    (``Database.planner_mode = 'first-match'``; see
    ``benchmarks/test_ablation_planner.py``).

    It reproduces the seed behaviour — and its bugs — faithfully: the
    *first* index in catalog order whose attribute path matches wins
    regardless of addressing mode or selectivity, a text index that
    cannot narrow a CONTAINS pattern aborts the whole lookup, conjuncts
    intersect in WHERE order without early exit, and the candidate list
    is fully materialized before the first object is fetched.
    """
    report = PlanReport(used_indexes=[])
    matched: list[tuple[IndexCondition, dict[TID, list[HierarchicalAddress]], bool]] = []
    for condition in conditions:
        hit = _first_match_lookup(entry, condition)
        if hit is None:
            continue
        index_name, by_root, hierarchical = hit
        report.used_indexes.append(index_name)
        matched.append((condition, by_root, hierarchical))
    if not matched:
        return None, report
    roots: Optional[set[TID]] = None
    for _condition, by_root, _hierarchical in matched:
        keys = set(by_root)
        roots = keys if roots is None else roots & keys
    assert roots is not None
    for i in range(len(matched)):
        for j in range(i + 1, len(matched)):
            cond_a, by_a, hier_a = matched[i]
            cond_b, by_b, hier_b = matched[j]
            shared = _shared_binding(cond_a.binding, cond_b.binding)
            if shared == 0 or not (hier_a and hier_b):
                continue
            report.prefix_joins += 1
            roots = {
                root
                for root in roots
                if any(
                    a.shares_prefix(b, shared)
                    for a in by_a.get(root, ())
                    for b in by_b.get(root, ())
                )
            }
    ordered = sorted(roots, key=lambda tid: (tid.page, tid.slot))
    report.actual_candidates = len(ordered)
    return ordered, report


def _first_match_lookup(
    entry: TableEntry, condition: IndexCondition
) -> Optional[tuple[str, dict[TID, list[HierarchicalAddress]], bool]]:
    """Seed-faithful lookup: first matching index in catalog order."""
    if condition.kind in ("eq", "range"):
        for name, index in entry.indexes.items():
            if isinstance(index, FlatIndex):
                if index.definition.attribute_path != condition.attribute_path:
                    continue
                by_root: dict[TID, list[HierarchicalAddress]] = {
                    tid: [] for tid in _index_hits(index, condition)
                }
                return name, by_root, False
            if not isinstance(index, NF2Index):
                continue
            if index.definition.attribute_path != condition.attribute_path:
                continue
            mode = index.definition.mode
            if mode is AddressingMode.DATA_TID:
                continue
            by_root = {}
            for address in _index_hits(index, condition):
                if isinstance(address, HierarchicalAddress):
                    by_root.setdefault(address.root, []).append(address)
                else:
                    by_root.setdefault(address, [])
            return name, by_root, mode is AddressingMode.HIERARCHICAL
        return None
    for name, index in entry.indexes.items():
        if not isinstance(index, TextIndex):
            continue
        if index.definition.attribute_path != condition.attribute_path:
            continue
        addresses = index.search(condition.value)
        if addresses is None:
            return None  # the seed bug: aborts instead of continuing
        by_root = {}
        for address in addresses:
            if isinstance(address, HierarchicalAddress):
                by_root.setdefault(address.root, []).append(address)
            else:
                by_root.setdefault(address, [])
        return name, by_root, False
    return None


def _shared_binding(a: tuple[str, ...], b: tuple[str, ...]) -> int:
    shared = 0
    for x, y in zip(a, b):
        if x != y:
            break
        shared += 1
    return shared
