"""Tokenizer for the NF2 query language.

The surface syntax follows the paper's examples (dots added where the 1986
typesetting used spaces)::

    SELECT x.DNO, x.MGRNO, x.BUDGET
    FROM   x IN DEPARTMENTS
    WHERE  EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'
"""

from __future__ import annotations

import re
from typing import Iterator, NamedTuple

from repro.errors import LexError

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "IN", "EXISTS", "ALL", "AND", "OR", "NOT",
        "CONTAINS", "ASOF", "AS", "TRUE", "FALSE", "NULL", "IS",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "CREATE", "DROP", "TABLE", "LIST", "OF", "INDEX", "TEXT", "ON",
        "VERSIONED", "ORDER", "BY", "ASC", "DESC", "DISTINCT",
        "ALTER", "ADD", "ATTRIBUTE", "RENAME", "TO",
        "EXPLAIN", "ANALYZE",
    }
)


class Token(NamedTuple):
    kind: str       # 'keyword' | 'ident' | 'int' | 'float' | 'string' | 'punct' | 'eof'
    text: str
    position: int

    @property
    def upper(self) -> str:
        return self.text.upper()


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_\-/]*)
  | (?P<punct><=|>=|<>|!=|=|<|>|\(|\)|\[|\]|\{|\}|,|\.|\*|:|\+|-|/)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens, ending with a single ``eof`` token."""
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise LexError(
                f"unexpected character {text[position]!r}", position=position
            )
        kind = match.lastgroup
        assert kind is not None
        value = match.group()
        start = match.start()
        position = match.end()
        if kind in ("ws", "comment"):
            continue
        if kind == "ident" and value.upper() in KEYWORDS:
            yield Token("keyword", value, start)
        elif kind == "string":
            # strip quotes, un-double embedded quotes
            yield Token("string", value[1:-1].replace("''", "'"), start)
        else:
            yield Token(kind, value, start)
    yield Token("eof", "", length)
