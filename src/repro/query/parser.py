"""Recursive-descent parser for the NF2 query language.

Grammar sketch (examples are the paper's)::

    query      : SELECT select_list FROM range (',' range)* [WHERE predicate]
    select_list: '*' | item (',' item)*
    item       : IDENT '=' '(' query ')'      -- nested result structure
               | IDENT '=' expr               -- renamed attribute
               | expr [AS IDENT]
    range      : IDENT IN source
    source     : (table-name | path) [ASOF 'YYYY-MM-DD']
    predicate  : or-expr;  quantifiers bind one following unary predicate:
                   EXISTS y IN x.EQUIP: y.TYPE = 'PC/AT'
                   ALL y IN x.PROJECTS: ALL z IN y.MEMBERS: z.FUNCTION = '...'
                 (the ':' is optional, matching the paper's layout)
    path       : IDENT ('[' INT ']')* ('.' IDENT ('[' INT ']')*)*
                 subscripts are 1-based (x.AUTHORS[1])

DML::

    INSERT INTO T VALUES (...), (...)        -- '{...}' relation / '<...>' list literals
    UPDATE T x SET BUDGET = 0 WHERE x.DNO = 314
    DELETE FROM T x WHERE x.DNO = 314

DDL::

    CREATE [VERSIONED] TABLE/LIST name (...)  -- body per repro.model.ddl
    CREATE [TEXT] INDEX name ON T (PROJECTS.MEMBERS.FUNCTION)
    DROP TABLE name / DROP INDEX name
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.errors import ParseError
from repro.obs.sysviews import SYS_VIEW_NAMES
from repro.query import ast
from repro.query.lexer import Token, tokenize

_COMPARISON_OPS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = list(tokenize(text))
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.current
        context = f" near {token.text!r}" if token.text else " at end of input"
        return ParseError(f"{message}{context}", position=token.position)

    def at_keyword(self, *words: str) -> bool:
        return self.current.kind == "keyword" and self.current.upper in words

    def accept_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def at_punct(self, text: str) -> bool:
        return self.current.kind == "punct" and self.current.text == text

    def accept_punct(self, text: str) -> bool:
        if self.at_punct(text):
            self.advance()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        if not self.at_punct(text):
            raise self.error(f"expected {text!r}")
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> str:
        if self.current.kind != "ident":
            raise self.error(f"expected {what}")
        return self.advance().text

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise self.error("unexpected trailing input")

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.at_keyword("EXPLAIN"):
            self.advance()
            analyze = self.accept_keyword("ANALYZE")
            target = self.parse_statement()
            if isinstance(target, ast.ExplainStatement):
                raise self.error("EXPLAIN may not be nested")
            return ast.ExplainStatement(target=target, analyze=analyze)
        if self.at_keyword("SELECT"):
            query = self.parse_query()
            self.expect_eof()
            return query
        if self.at_keyword("INSERT"):
            return self.parse_insert()
        if self.at_keyword("UPDATE"):
            return self.parse_update()
        if self.at_keyword("DELETE"):
            return self.parse_delete()
        if self.at_keyword("CREATE"):
            return self.parse_create()
        if self.at_keyword("DROP"):
            return self.parse_drop()
        if self.at_keyword("ALTER"):
            return self.parse_alter()
        raise self.error("expected a statement")

    # -- queries -------------------------------------------------------------------

    def parse_query(self) -> ast.Query:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        select_star = False
        items: list[ast.SelectItem] = []
        if self.accept_punct("*"):
            select_star = True
        else:
            items.append(self.parse_select_item())
            while self.accept_punct(","):
                items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        ranges = [self.parse_range()]
        while self.accept_punct(","):
            ranges.append(self.parse_range())
        where: Optional[ast.Predicate] = None
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_punct(","):
                order_by.append(self.parse_order_item())
        return ast.Query(
            select=tuple(items),
            ranges=tuple(ranges),
            where=where,
            select_star=select_star,
            distinct=distinct,
            order_by=tuple(order_by),
        )

    def parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr=expr, descending=descending)

    def parse_select_item(self) -> ast.SelectItem:
        # IDENT '=' (query|expr) — explicit naming
        if (
            self.current.kind == "ident"
            and self.peek().kind == "punct"
            and self.peek().text == "="
        ):
            alias = self.advance().text
            self.advance()  # '='
            if self.at_punct("(") and self.peek().upper == "SELECT":
                self.expect_punct("(")
                query = self.parse_query()
                self.expect_punct(")")
                return ast.SelectItem(expr=query, alias=alias)
            expr = self.parse_expression()
            return ast.SelectItem(expr=expr, alias=alias)
        expr = self.parse_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        return ast.SelectItem(expr=expr, alias=alias)

    def parse_range(self) -> ast.Range:
        var = self.expect_ident("tuple variable")
        self.expect_keyword("IN")
        source = self.parse_source()
        return ast.Range(var=var, source=source)

    def parse_source(self) -> ast.Source:
        name = self.expect_ident("table name or path")
        # SYS.<view> — the virtual observability catalog.  Only recognized
        # for the known view names, so an outer range variable that happens
        # to be called SYS can still own ordinary nested-path sources.
        if (
            name.upper() == "SYS"
            and self.at_punct(".")
            and self.peek().kind == "ident"
            and self.peek().text.upper() in SYS_VIEW_NAMES
        ):
            self.advance()  # '.'
            view = self.advance().text.upper()
            asof = self.parse_asof()
            return ast.Source(table=f"SYS.{view}", asof=asof)
        if self.at_punct(".") or self.at_punct("["):
            path = self.parse_path_continuation(name)
            asof = self.parse_asof()
            return ast.Source(path=path, asof=asof)
        asof = self.parse_asof()
        return ast.Source(table=name, asof=asof)

    def parse_asof(self) -> Optional[datetime.date]:
        if not self.accept_keyword("ASOF"):
            return None
        token = self.current
        if token.kind != "string":
            raise self.error("ASOF expects a quoted ISO date, e.g. '1984-01-15'")
        self.advance()
        try:
            return datetime.date.fromisoformat(token.text)
        except ValueError:
            raise ParseError(
                f"invalid ASOF date {token.text!r}", position=token.position
            ) from None

    # -- predicates ---------------------------------------------------------------------

    def parse_predicate(self) -> ast.Predicate:
        return self.parse_or()

    def parse_or(self) -> ast.Predicate:
        operands = [self.parse_and()]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp(op="OR", operands=tuple(operands))

    def parse_and(self) -> ast.Predicate:
        operands = [self.parse_unary()]
        while self.accept_keyword("AND"):
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return ast.BoolOp(op="AND", operands=tuple(operands))

    def parse_unary(self) -> ast.Predicate:
        if self.accept_keyword("NOT"):
            return ast.Not(self.parse_unary())
        if self.at_keyword("EXISTS", "ALL"):
            kind = self.advance().upper
            var = self.expect_ident("tuple variable")
            self.expect_keyword("IN")
            source = self.parse_source()
            self.accept_punct(":")  # optional, the paper just uses layout
            body = self.parse_unary()
            return ast.Quantifier(kind=kind, var=var, source=source, body=body)
        if self.at_punct("(") and self.peek().upper != "SELECT":
            self.expect_punct("(")
            inner = self.parse_predicate()
            self.expect_punct(")")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Predicate:
        left = self.parse_expression()
        if self.accept_keyword("IS"):
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(subject=left, negated=negated)
        negated = False
        if self.at_keyword("NOT"):
            self.advance()
            self.expect_keyword("CONTAINS")
            negated = True
            return self._finish_contains(left, negated)
        if self.accept_keyword("CONTAINS"):
            return self._finish_contains(left, negated)
        if self.current.kind == "punct" and self.current.text in _COMPARISON_OPS:
            op = self.advance().text
            if op == "!=":
                op = "<>"
            right = self.parse_expression()
            return ast.Comparison(op=op, left=left, right=right)
        raise self.error("expected a comparison operator, CONTAINS, or IS NULL")

    def _finish_contains(self, subject: ast.Expression, negated: bool) -> ast.Contains:
        token = self.current
        if token.kind != "string":
            raise self.error("CONTAINS expects a quoted pattern")
        self.advance()
        return ast.Contains(subject=subject, pattern=token.text, negated=negated)

    # -- expressions ---------------------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.Literal(int(token.text))
        if token.kind == "float":
            self.advance()
            return ast.Literal(float(token.text))
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.text)
        if self.at_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if self.at_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if self.at_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if self.at_punct("(") and self.peek().upper == "SELECT":
            self.expect_punct("(")
            query = self.parse_query()
            self.expect_punct(")")
            return query
        if token.kind == "ident":
            name = self.advance().text
            if name.upper() in _AGGREGATES and self.at_punct("("):
                self.expect_punct("(")
                argument = self.parse_expression()
                self.expect_punct(")")
                return ast.Aggregate(function=name.upper(), argument=argument)
            return self.parse_path_continuation(name)
        raise self.error("expected an expression")

    def parse_path_continuation(self, var: str) -> ast.Path:
        steps: list[ast.PathStep] = []
        # subscript directly on the variable: v[1].NAME
        subscript = self.parse_subscript()
        if subscript is not None:
            steps.append(ast.PathStep(name=None, subscript=subscript))
        while self.accept_punct("."):
            name = self.expect_ident("attribute name")
            steps.append(ast.PathStep(name=name, subscript=self.parse_subscript()))
        return ast.Path(var=var, steps=tuple(steps))

    def parse_subscript(self) -> Optional[int]:
        if not self.accept_punct("["):
            return None
        token = self.current
        if token.kind != "int":
            raise self.error("subscripts must be positive integers")
        self.advance()
        index = int(token.text)
        if index < 1:
            raise ParseError(
                "subscripts are 1-based (the paper's x.AUTHORS[1])",
                position=token.position,
            )
        self.expect_punct("]")
        return index

    # -- DML ----------------------------------------------------------------------------------

    def parse_insert(self) -> ast.Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        name = self.expect_ident("table name or subtable path")
        if self.at_punct("."):
            # partial insert: INSERT INTO y.MEMBERS FROM ... VALUES (...)
            target = self.parse_path_continuation(name)
            self.expect_keyword("FROM")
            ranges = [self.parse_range()]
            while self.accept_punct(","):
                ranges.append(self.parse_range())
            where = None
            if self.accept_keyword("WHERE"):
                where = self.parse_predicate()
            self.expect_keyword("VALUES")
            rows = [self.parse_tuple_literal()]
            while self.accept_punct(","):
                rows.append(self.parse_tuple_literal())
            self.expect_eof()
            return ast.SubInsertStatement(
                target=target, ranges=tuple(ranges), rows=tuple(rows), where=where
            )
        table = name
        self.expect_keyword("VALUES")
        rows = [self.parse_tuple_literal()]
        while self.accept_punct(","):
            rows.append(self.parse_tuple_literal())
        self.expect_eof()
        return ast.InsertStatement(table=table, rows=tuple(rows))

    def parse_tuple_literal(self) -> ast.TupleLiteral:
        self.expect_punct("(")
        values = [self.parse_value_literal()]
        while self.accept_punct(","):
            values.append(self.parse_value_literal())
        self.expect_punct(")")
        return ast.TupleLiteral(values=tuple(values))

    def parse_value_literal(self) -> ast.ValueLiteral:
        if self.at_punct("{") or self.at_punct("<"):
            ordered = self.current.text == "<"
            closer = "}" if not ordered else ">"
            self.advance()
            rows: list[ast.TupleLiteral] = []
            if not self.at_punct(closer):
                rows.append(self.parse_tuple_literal())
                while self.accept_punct(","):
                    rows.append(self.parse_tuple_literal())
            self.expect_punct(closer)
            return ast.TableLiteral(rows=tuple(rows), ordered=ordered)
        negative = self.accept_punct("-")
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.Literal(-int(token.text) if negative else int(token.text))
        if token.kind == "float":
            self.advance()
            return ast.Literal(-float(token.text) if negative else float(token.text))
        if negative:
            raise self.error("expected a number after '-'")
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.text)
        if self.at_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if self.at_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if self.at_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        raise self.error("expected a value literal")

    def parse_update(self) -> ast.Statement:
        self.expect_keyword("UPDATE")
        first = self.expect_ident("table name or target variable")
        if self.at_keyword("FROM"):
            # partial update: UPDATE z FROM <ranges> SET ... [WHERE ...]
            self.advance()
            ranges = [self.parse_range()]
            while self.accept_punct(","):
                ranges.append(self.parse_range())
            self.expect_keyword("SET")
            assignments = [self.parse_assignment(first)]
            while self.accept_punct(","):
                assignments.append(self.parse_assignment(first))
            where = None
            if self.accept_keyword("WHERE"):
                where = self.parse_predicate()
            self.expect_eof()
            return ast.SubUpdateStatement(
                var=first, ranges=tuple(ranges),
                assignments=tuple(assignments), where=where,
            )
        table = first
        var = self.expect_ident("tuple variable")
        self.expect_keyword("SET")
        assignments = [self.parse_assignment(var)]
        while self.accept_punct(","):
            assignments.append(self.parse_assignment(var))
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        self.expect_eof()
        return ast.UpdateStatement(
            table=table, var=var, assignments=tuple(assignments), where=where
        )

    def parse_assignment(self, var: str) -> tuple[str, ast.Expression]:
        name = self.expect_ident("attribute name")
        # allow 'x.BUDGET = ...' as well as 'BUDGET = ...'
        if name == var and self.accept_punct("."):
            name = self.expect_ident("attribute name")
        self.expect_punct("=")
        return name, self.parse_expression()

    def parse_delete(self) -> ast.Statement:
        self.expect_keyword("DELETE")
        if self.current.kind == "ident":
            # partial delete: DELETE z FROM <ranges> [WHERE ...]
            var = self.advance().text
            self.expect_keyword("FROM")
            ranges = [self.parse_range()]
            while self.accept_punct(","):
                ranges.append(self.parse_range())
            where = None
            if self.accept_keyword("WHERE"):
                where = self.parse_predicate()
            self.expect_eof()
            return ast.SubDeleteStatement(
                var=var, ranges=tuple(ranges), where=where
            )
        self.expect_keyword("FROM")
        table = self.expect_ident("table name")
        var = "x"
        if self.current.kind == "ident":
            var = self.advance().text
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        self.expect_eof()
        return ast.DeleteStatement(table=table, var=var, where=where)

    # -- DDL ------------------------------------------------------------------------------------

    def parse_create(self) -> ast.Statement:
        start = self.current.position
        self.expect_keyword("CREATE")
        versioned = self.accept_keyword("VERSIONED")
        if self.at_keyword("TABLE", "LIST"):
            # Delegate the body to the model-layer DDL parser on raw text.
            ddl_text = "CREATE " + self.text[self.current.position:]
            # consume the remaining tokens
            while self.current.kind != "eof":
                self.advance()
            return ast.CreateTableStatement(ddl_text=ddl_text, versioned=versioned)
        if versioned:
            raise self.error("VERSIONED applies to CREATE TABLE/LIST only")
        text_index = self.accept_keyword("TEXT")
        self.expect_keyword("INDEX")
        name = self.expect_ident("index name")
        self.expect_keyword("ON")
        table = self.expect_ident("table name")
        self.expect_punct("(")
        path = [self.expect_ident("attribute name")]
        while self.accept_punct("."):
            path.append(self.expect_ident("attribute name"))
        self.expect_punct(")")
        self.expect_eof()
        return ast.CreateIndexStatement(
            name=name, table=table, attribute_path=tuple(path), text=text_index
        )

    def parse_alter(self) -> ast.AlterTableStatement:
        self.expect_keyword("ALTER")
        self.expect_keyword("TABLE")
        table = self.expect_ident("table name")
        if self.accept_keyword("ADD"):
            path = self._parse_dotted_path()
            type_name = self.expect_ident("type name")
            self.expect_eof()
            return ast.AlterTableStatement(
                table=table, action="add", attribute_path=path, payload=type_name
            )
        if self.accept_keyword("DROP"):
            self.expect_keyword("ATTRIBUTE")
            path = self._parse_dotted_path()
            self.expect_eof()
            return ast.AlterTableStatement(
                table=table, action="drop", attribute_path=path
            )
        if self.accept_keyword("RENAME"):
            self.expect_keyword("ATTRIBUTE")
            path = self._parse_dotted_path()
            self.expect_keyword("TO")
            new_name = self.expect_ident("new attribute name")
            self.expect_eof()
            return ast.AlterTableStatement(
                table=table, action="rename", attribute_path=path, payload=new_name
            )
        raise self.error("expected ADD, DROP ATTRIBUTE, or RENAME ATTRIBUTE")

    def _parse_dotted_path(self) -> tuple[str, ...]:
        path = [self.expect_ident("attribute name")]
        while self.accept_punct("."):
            path.append(self.expect_ident("attribute name"))
        return tuple(path)

    def parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            name = self.expect_ident("table name")
            self.expect_eof()
            return ast.DropTableStatement(table=name)
        if self.accept_keyword("INDEX"):
            name = self.expect_ident("index name")
            self.expect_eof()
            return ast.DropIndexStatement(name=name)
        raise self.error("expected DROP TABLE or DROP INDEX")


def parse_statement(text: str) -> ast.Statement:
    """Parse any statement (query, DML, or DDL)."""
    return _Parser(text).parse_statement()


def parse_query(text: str) -> ast.Query:
    """Parse a SELECT query."""
    parser = _Parser(text)
    query = parser.parse_query()
    parser.expect_eof()
    return query
