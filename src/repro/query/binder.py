"""Name and type resolution for NF2 queries.

The binder checks a parsed query against the catalog: every tuple variable
resolves, every path exists in its variable's schema, comparisons are
type-compatible, and the result schema (possibly nested, via sub-SELECTs in
the select list) is inferred.

The "loop" mental model of the paper (Section 3, Example 2) shows up here as
lexical scoping: each FROM range introduces a variable visible to all later
ranges, to the select list, and to the WHERE clause; quantifiers introduce
inner variables visible in their body.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Mapping, Optional, Protocol, Union

from repro.errors import BindError
from repro.model.schema import AttributeSchema, TableSchema, nested
from repro.model.types import AtomicType
from repro.query import ast


class SchemaProvider(Protocol):
    """What the binder needs from the catalog."""

    def table_schema(self, name: str) -> TableSchema:
        """Schema of a stored table; raises UnknownTableError otherwise."""
        ...

    def is_versioned(self, name: str) -> bool:
        ...


# -- value types -------------------------------------------------------------


@dataclass(frozen=True)
class AtomType:
    type: Optional[AtomicType]  # None for NULL literals (unifies with all)


@dataclass(frozen=True)
class TableType:
    schema: TableSchema


@dataclass(frozen=True)
class RowType:
    schema: TableSchema


ValueType = Union[AtomType, TableType, RowType]


def describe_type(value_type: ValueType) -> str:
    if isinstance(value_type, AtomType):
        return value_type.type.value if value_type.type else "NULL"
    if isinstance(value_type, TableType):
        kind = "LIST" if value_type.schema.ordered else "TABLE"
        return f"{kind}({value_type.schema.name})"
    return f"ROW({value_type.schema.name})"


# -- scopes -------------------------------------------------------------------


class Scope:
    """Lexically nested variable scope: var -> row schema."""

    def __init__(self, parent: Optional["Scope"] = None):
        self._parent = parent
        self._vars: dict[str, TableSchema] = {}

    def define(self, var: str, schema: TableSchema) -> None:
        if self.lookup(var) is not None:
            raise BindError(f"tuple variable {var!r} is already bound")
        self._vars[var] = schema

    def lookup(self, var: str) -> Optional[TableSchema]:
        if var in self._vars:
            return self._vars[var]
        if self._parent is not None:
            return self._parent.lookup(var)
        return None

    def child(self) -> "Scope":
        return Scope(self)


# -- binder ----------------------------------------------------------------------


class Binder:
    def __init__(self, provider: SchemaProvider):
        self._provider = provider

    # .. queries ..............................................................

    def bind_query(self, query: ast.Query, scope: Optional[Scope] = None) -> TableSchema:
        """Validate *query*; return its result schema."""
        scope = (scope or Scope()).child()
        source_types: list[TableType] = []
        for range_ in query.ranges:
            table_type = self.bind_source(range_.source, scope)
            scope.define(range_.var, table_type.schema)
            source_types.append(table_type)

        if query.where is not None:
            self.bind_predicate(query.where, scope)

        for order_item in query.order_by:
            key_type = _unwrap_row(self.bind_expression(order_item.expr, scope))
            if not isinstance(key_type, AtomType):
                raise BindError(
                    "ORDER BY needs atomic sort keys, got "
                    + describe_type(key_type)
                )

        if query.select_star:
            if len(query.ranges) != 1:
                raise BindError("SELECT * requires exactly one FROM range")
            base = source_types[0].schema
            return TableSchema(
                name="RESULT",
                attributes=base.attributes,
                ordered=base.ordered or bool(query.order_by),
            )

        attributes: list[AttributeSchema] = []
        seen: set[str] = set()
        for item in query.select:
            name = item.output_name()
            if name in seen:
                raise BindError(
                    f"duplicate output attribute {name!r}; disambiguate with AS"
                )
            seen.add(name)
            attributes.append(self.bind_select_item(item, name, scope))
        ordered = bool(query.order_by) or (
            len(query.ranges) == 1 and source_types[0].schema.ordered
        )
        return TableSchema(name="RESULT", attributes=tuple(attributes), ordered=ordered)

    def bind_select_item(
        self, item: ast.SelectItem, name: str, scope: Scope
    ) -> AttributeSchema:
        if isinstance(item.expr, ast.Query):
            inner = self.bind_query(item.expr, scope)
            return nested(name, inner)
        value_type = self.bind_expression(item.expr, scope)
        if isinstance(value_type, AtomType):
            if value_type.type is None:
                raise BindError(f"cannot infer a type for output attribute {name!r}")
            return AttributeSchema(name=name, atomic_type=value_type.type)
        if isinstance(value_type, TableType):
            return nested(name, value_type.schema)
        # RowType: allowed when it unwraps to a single atomic attribute
        row = value_type.schema
        if len(row.attributes) == 1 and row.attributes[0].is_atomic:
            return AttributeSchema(
                name=name, atomic_type=row.attributes[0].atomic_type
            )
        raise BindError(
            f"select item {name!r} yields a whole tuple of {row.name!r}; "
            "select its attributes instead"
        )

    # .. sources ................................................................

    def bind_source(self, source: ast.Source, scope: Scope) -> TableType:
        if source.table is not None:
            # a bare identifier: a stored table, unless it shadows a variable
            if scope.lookup(source.table) is not None:
                raise BindError(
                    f"{source.table!r} is a tuple variable; ranges iterate "
                    "tables, not tuples"
                )
            schema = self._provider.table_schema(source.table)
            if source.asof is not None and not self._provider.is_versioned(source.table):
                raise BindError(f"table {source.table!r} is not versioned (ASOF)")
            return TableType(schema)
        assert source.path is not None
        if source.asof is not None:
            raise BindError("ASOF applies to stored tables, not to paths")
        value_type = self.bind_path(source.path, scope)
        if not isinstance(value_type, TableType):
            raise BindError(
                f"range source {source.path.dotted()!r} is not table-valued"
            )
        return value_type

    # .. predicates ...............................................................

    def bind_predicate(self, predicate: ast.Predicate, scope: Scope) -> None:
        if isinstance(predicate, ast.BoolOp):
            for operand in predicate.operands:
                self.bind_predicate(operand, scope)
            return
        if isinstance(predicate, ast.Not):
            self.bind_predicate(predicate.operand, scope)
            return
        if isinstance(predicate, ast.Quantifier):
            inner = scope.child()
            table_type = self.bind_source(predicate.source, inner)
            inner.define(predicate.var, table_type.schema)
            self.bind_predicate(predicate.body, inner)
            return
        if isinstance(predicate, ast.Contains):
            subject_type = self.bind_expression(predicate.subject, scope)
            if not (
                isinstance(subject_type, AtomType)
                and subject_type.type in (AtomicType.STRING, None)
            ):
                raise BindError(
                    "CONTAINS applies to STRING attributes, got "
                    + describe_type(subject_type)
                )
            return
        if isinstance(predicate, ast.IsNull):
            self.bind_expression(predicate.subject, scope)
            return
        if isinstance(predicate, ast.Comparison):
            left = self.bind_expression(predicate.left, scope)
            right = self.bind_expression(predicate.right, scope)
            self._check_comparable(predicate.op, left, right)
            return
        raise BindError(f"unhandled predicate {predicate!r}")  # pragma: no cover

    def _check_comparable(self, op: str, left: ValueType, right: ValueType) -> None:
        left = _unwrap_row(left)
        right = _unwrap_row(right)
        if isinstance(left, AtomType) and isinstance(right, AtomType):
            if left.type is None or right.type is None:
                return
            if left.type == right.type:
                return
            numeric = {AtomicType.INT, AtomicType.FLOAT}
            if left.type in numeric and right.type in numeric:
                return
            raise BindError(
                f"cannot compare {describe_type(left)} with {describe_type(right)}"
            )
        if isinstance(left, TableType) and isinstance(right, TableType):
            if op not in ("=", "<>"):
                raise BindError("tables compare with = and <> only")
            return
        raise BindError(
            f"cannot compare {describe_type(left)} with {describe_type(right)}"
        )

    # .. expressions .................................................................

    def bind_expression(self, expr: ast.Expression, scope: Scope) -> ValueType:
        if isinstance(expr, ast.Literal):
            return AtomType(_literal_type(expr.value))
        if isinstance(expr, ast.Path):
            return self.bind_path(expr, scope)
        if isinstance(expr, ast.Query):
            return TableType(self.bind_query(expr, scope))
        if isinstance(expr, ast.Aggregate):
            return self.bind_aggregate(expr, scope)
        raise BindError(f"unhandled expression {expr!r}")  # pragma: no cover

    def bind_aggregate(self, expr: ast.Aggregate, scope: Scope) -> AtomType:
        """Aggregates flatten their argument across subtable levels."""
        if isinstance(expr.argument, ast.Path):
            arg_type = self.bind_path(expr.argument, scope, multi=True)
        else:
            arg_type = self.bind_expression(expr.argument, scope)
        if expr.function == "COUNT":
            return AtomType(AtomicType.INT)
        if isinstance(arg_type, TableType):
            attrs = arg_type.schema.attributes
            if len(attrs) == 1 and attrs[0].is_atomic:
                arg_type = AtomType(attrs[0].atomic_type)
            else:
                raise BindError(
                    f"{expr.function} needs atomic values; "
                    f"{arg_type.schema.name!r} has several attributes"
                )
        arg_type = _unwrap_row(arg_type)
        if not isinstance(arg_type, AtomType):
            raise BindError(
                f"{expr.function} needs atomic values, got "
                + describe_type(arg_type)
            )
        numeric = (AtomicType.INT, AtomicType.FLOAT, None)
        if expr.function in ("SUM", "AVG") and arg_type.type not in numeric:
            raise BindError(
                f"{expr.function} needs numeric values, got "
                + describe_type(arg_type)
            )
        if expr.function == "AVG":
            return AtomType(AtomicType.FLOAT)
        return arg_type

    def bind_path(self, path: ast.Path, scope: Scope, multi: bool = False) -> ValueType:
        """Resolve a path.  With ``multi=True`` (aggregate arguments) a
        name step may descend from a table into its elements' attributes,
        flattening — e.g. ``SUM(x.PROJECTS.MEMBERS.EMPNO)``."""
        schema = scope.lookup(path.var)
        if schema is None:
            raise BindError(f"unknown tuple variable {path.var!r}")
        current: ValueType = RowType(schema)
        for step in path.steps:
            if step.name is not None:
                if multi and isinstance(current, TableType):
                    current = RowType(current.schema)
                if not isinstance(current, RowType):
                    raise BindError(
                        f"cannot select attribute {step.name!r} of "
                        f"{describe_type(current)} in {path.dotted()!r}"
                    )
                try:
                    attr = current.schema.attribute(step.name)
                except Exception as exc:
                    raise BindError(str(exc)) from exc
                if attr.is_atomic:
                    current = AtomType(attr.atomic_type)
                else:
                    assert attr.table is not None
                    current = TableType(attr.table)
            if step.subscript is not None:
                if not isinstance(current, TableType):
                    raise BindError(
                        f"subscript applies to table-valued attributes, not "
                        f"{describe_type(current)} in {path.dotted()!r}"
                    )
                if not current.schema.ordered:
                    raise BindError(
                        f"subscript needs an ordered table (list); "
                        f"{current.schema.name!r} is unordered"
                    )
                current = RowType(current.schema)
        return current


def _unwrap_row(value_type: ValueType) -> ValueType:
    """A single-attribute row compares as its attribute (x.AUTHORS[1] =
    'Jones')."""
    if isinstance(value_type, RowType):
        attrs = value_type.schema.attributes
        if len(attrs) == 1 and attrs[0].is_atomic:
            return AtomType(attrs[0].atomic_type)
    return value_type


def _literal_type(value: object) -> Optional[AtomicType]:
    if value is None:
        return None
    if isinstance(value, bool):
        return AtomicType.BOOL
    if isinstance(value, int):
        return AtomicType.INT
    if isinstance(value, float):
        return AtomicType.FLOAT
    if isinstance(value, str):
        return AtomicType.STRING
    if isinstance(value, datetime.date):
        return AtomicType.DATE
    raise BindError(f"unsupported literal {value!r}")
