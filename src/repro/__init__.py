"""repro — a reproduction of the AIM-II extended NF2 DBMS prototype.

Dadam et al., "A DBMS Prototype to Support Extended NF2 Relations: An
Integrated View on Flat Tables and Hierarchies", SIGMOD 1986.

Public API
----------

* :class:`repro.Database` — the DBMS facade (DDL, DML, queries, indexes,
  tuple names, temporal ASOF).
* :mod:`repro.model` — schemas and nested values.
* :mod:`repro.algebra` — nest / unnest / project / select / join.
* :mod:`repro.render` — paper-style ASCII rendering of nested tables.
* :mod:`repro.datasets` — the paper's Tables 1-8 and synthetic generators.
"""

from repro.model.schema import AttributeSchema, TableSchema, atomic, list_of, nested, table
from repro.model.types import AtomicType
from repro.model.values import TableValue, TupleValue
from repro.model.ddl import parse_create_table, schema_to_ddl
from repro.render import render_table, render_schema_tree

__version__ = "1.0.0"

__all__ = [
    "AtomicType",
    "AttributeSchema",
    "TableSchema",
    "TableValue",
    "TupleValue",
    "atomic",
    "table",
    "list_of",
    "nested",
    "parse_create_table",
    "schema_to_ddl",
    "render_table",
    "render_schema_tree",
    "Database",
    "__version__",
]


def __getattr__(name: str):
    # Imported lazily to avoid import cycles during package initialization.
    if name == "Database":
        from repro.database import Database

        return Database
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
