"""The flat-relational baseline: 1NF decomposition + runtime joins.

DEPARTMENTS-shaped complex objects are stored as the paper's Tables 1-4
(DEPARTMENTS-1NF, PROJECTS-1NF, MEMBERS-1NF, EQUIP-1NF) in ordinary heap
files.  Reassembling one department is a 4-way join; with indexes on the
foreign keys this is index-nested-loop, without them a scan — either way
the tuples of one object are scattered over the shared heaps, which is
exactly the clustering disadvantage Section 1 and 4.1 describe.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets import paper
from repro.index.manager import FlatIndex, IndexDefinition
from repro.model.values import TupleValue
from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.heap import HeapFile
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.tid import TID


class FlatRelationalBaseline:
    """Stores departments in 1NF and reassembles them with joins."""

    def __init__(self, buffer_capacity: int = 512, with_indexes: bool = True):
        self.buffer = BufferManager(MemoryPagedFile(), capacity=buffer_capacity)
        self._segments = [
            Segment(self.buffer, name=f"flat-{name}")
            for name in ("departments", "projects", "members", "equip")
        ]
        self.departments = HeapFile(self._segments[0], paper.DEPARTMENTS_1NF_SCHEMA)
        self.projects = HeapFile(self._segments[1], paper.PROJECTS_1NF_SCHEMA)
        self.members = HeapFile(self._segments[2], paper.MEMBERS_1NF_SCHEMA)
        self.equipment = HeapFile(self._segments[3], paper.EQUIP_1NF_SCHEMA)
        self.with_indexes = with_indexes
        self._dept_index = FlatIndex(IndexDefinition("D", "DEPARTMENTS-1NF", ("DNO",)))
        self._project_index = FlatIndex(IndexDefinition("P", "PROJECTS-1NF", ("DNO",)))
        self._member_index = FlatIndex(IndexDefinition("M", "MEMBERS-1NF", ("DNO",)))
        self._equip_index = FlatIndex(IndexDefinition("E", "EQUIP-1NF", ("DNO",)))

    @property
    def stats(self) -> BufferStats:
        return self.buffer.stats

    # -- loading ---------------------------------------------------------------

    def load(self, departments: list[dict]) -> None:
        """Load nested department rows, decomposed into the flat tables.

        Tuples are inserted table-by-table (all departments, then all
        projects, ...), the natural load order for a relational system —
        and the worst case for object clustering.
        """
        for dept in departments:
            tid = self.departments.insert(
                TupleValue.from_plain(
                    paper.DEPARTMENTS_1NF_SCHEMA,
                    (dept["DNO"], dept["MGRNO"], dept["BUDGET"]),
                )
            )
            self._dept_index.index_row(tid, dept["DNO"])
        for dept in departments:
            for project in dept["PROJECTS"]:
                tid = self.projects.insert(
                    TupleValue.from_plain(
                        paper.PROJECTS_1NF_SCHEMA,
                        (project["PNO"], project["PNAME"], dept["DNO"]),
                    )
                )
                self._project_index.index_row(tid, dept["DNO"])
        for dept in departments:
            for project in dept["PROJECTS"]:
                for member in project["MEMBERS"]:
                    tid = self.members.insert(
                        TupleValue.from_plain(
                            paper.MEMBERS_1NF_SCHEMA,
                            (
                                member["EMPNO"],
                                project["PNO"],
                                dept["DNO"],
                                member["FUNCTION"],
                            ),
                        )
                    )
                    self._member_index.index_row(tid, dept["DNO"])
        for dept in departments:
            for item in dept["EQUIP"]:
                tid = self.equipment.insert(
                    TupleValue.from_plain(
                        paper.EQUIP_1NF_SCHEMA,
                        (item["QU"], item["TYPE"], dept["DNO"]),
                    )
                )
                self._equip_index.index_row(tid, dept["DNO"])

    # -- retrieval -----------------------------------------------------------------

    def retrieve(self, dno: int) -> Optional[dict]:
        """Reassemble one department as nested plain data (the 4-way join)."""
        dept_rows = self._fetch(self.departments, self._dept_index, dno)
        if not dept_rows:
            return None
        dept = dept_rows[0]
        project_rows = self._fetch(self.projects, self._project_index, dno)
        member_rows = self._fetch(self.members, self._member_index, dno)
        equip_rows = self._fetch(self.equipment, self._equip_index, dno)
        projects = []
        for project in project_rows:
            members = [
                {"EMPNO": m["EMPNO"], "FUNCTION": m["FUNCTION"]}
                for m in member_rows
                if m["PNO"] == project["PNO"]
            ]
            projects.append(
                {"PNO": project["PNO"], "PNAME": project["PNAME"], "MEMBERS": members}
            )
        return {
            "DNO": dept["DNO"],
            "MGRNO": dept["MGRNO"],
            "BUDGET": dept["BUDGET"],
            "PROJECTS": projects,
            "EQUIP": [{"QU": e["QU"], "TYPE": e["TYPE"]} for e in equip_rows],
        }

    def _fetch(self, heap: HeapFile, index: FlatIndex, dno: int) -> list[TupleValue]:
        if self.with_indexes:
            return [heap.fetch(tid) for tid in index.search(dno)]
        return [row for _tid, row in heap.scan() if row["DNO"] == dno]

    # -- metrics ----------------------------------------------------------------------

    def pages_touched_for(self, dno: int) -> int:
        """Distinct pages read to reassemble one department, cold cache."""
        self.buffer.invalidate_cache()
        self.stats.reset()
        self.retrieve(dno)
        return len(self.stats.pages_touched)

    @property
    def total_pages(self) -> int:
        return sum(segment.page_count for segment in self._segments)
