"""Lorie-style complex objects: linked flat tuples (/HL82, LP83/).

"A complex object is implemented as a series of tuples logically linked
together.  The tuples are stored as part of normal, flat tables with
additional attributes not seen by the user ... Child, sibling, father, and
root pointers are used for that purpose." (Section 4.1)

Every node (department / project / member / equipment item) is one record
in a shared heap, carrying its user data plus system pointers:

* ``root``    — the complex object's root tuple,
* ``father``  — the parent tuple,
* ``child``   — per subtable, the first element,
* ``sibling`` — the next element of the same subtable.

No clustering or local address space exists — records land wherever the
heap has space (the "on top of an existing DBMS" property), so retrieving
one object chases pointers across many pages.  This is the measured
contrast for ablation A1.
"""

from __future__ import annotations

import struct
from typing import Optional

from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.tid import TID

_HEADER = struct.Struct(">B")  # node kind
_NIL = TID(0xFFFFFFFF, 0xFFFF)

KIND_DEPARTMENT = 1
KIND_PROJECT = 2
KIND_MEMBER = 3
KIND_EQUIPMENT = 4

#: node kind -> number of child pointers (subtables)
_CHILD_SLOTS = {
    KIND_DEPARTMENT: 2,  # PROJECTS, EQUIP
    KIND_PROJECT: 1,     # MEMBERS
    KIND_MEMBER: 0,
    KIND_EQUIPMENT: 0,
}


def _encode_node(kind: int, root: TID, father: TID, sibling: TID,
                 children: list[TID], payload: bytes) -> bytes:
    out = bytearray(_HEADER.pack(kind))
    for tid in (root, father, sibling, *children):
        out += tid.encode()
    out += payload
    return bytes(out)


def _decode_node(data: bytes) -> tuple[int, TID, TID, TID, list[TID], bytes]:
    kind = data[0]
    offset = 1
    root = TID.decode(data, offset); offset += 6
    father = TID.decode(data, offset); offset += 6
    sibling = TID.decode(data, offset); offset += 6
    children = []
    for _ in range(_CHILD_SLOTS[kind]):
        children.append(TID.decode(data, offset))
        offset += 6
    return kind, root, father, sibling, children, data[offset:]


def _pack_text(values: list) -> bytes:
    parts = []
    for value in values:
        raw = str(value).encode("utf-8")
        parts.append(struct.pack(">H", len(raw)) + raw)
    return b"".join(parts)


def _unpack_text(data: bytes, count: int) -> list[str]:
    out = []
    offset = 0
    for _ in range(count):
        length = struct.unpack_from(">H", data, offset)[0]
        offset += 2
        out.append(data[offset:offset + length].decode("utf-8"))
        offset += length
    return out


class LorieComplexObjects:
    """Departments as linked tuples over an unclustered shared heap."""

    def __init__(self, buffer_capacity: int = 512):
        self.buffer = BufferManager(MemoryPagedFile(), capacity=buffer_capacity)
        # One flat table (segment) per tuple type — Lorie's tuples "are
        # stored as part of normal, flat tables".
        self._segments = {
            KIND_DEPARTMENT: Segment(self.buffer, name="lorie-departments"),
            KIND_PROJECT: Segment(self.buffer, name="lorie-projects"),
            KIND_MEMBER: Segment(self.buffer, name="lorie-members"),
            KIND_EQUIPMENT: Segment(self.buffer, name="lorie-equip"),
        }
        self.roots: dict[int, TID] = {}  # DNO -> root tuple

    @property
    def stats(self) -> BufferStats:
        return self.buffer.stats

    # -- loading --------------------------------------------------------------------

    def load(self, departments: list[dict]) -> None:
        """Load departments through the normal flat-table insert paths.

        Each tuple type goes to its own table, and departments are loaded
        level-by-level (all roots, then all projects, ...), so one object's
        tuples end up spread over the tables' page sets — the layered
        approach has no complex-object clustering to prevent that.
        """
        # Pass 1: all department root tuples.
        pending: list[tuple[dict, TID]] = []
        for dept in departments:
            payload = _pack_text([dept["DNO"], dept["MGRNO"], dept["BUDGET"]])
            tid = self._segments[KIND_DEPARTMENT].insert_record(
                _encode_node(KIND_DEPARTMENT, _NIL, _NIL, _NIL, [_NIL, _NIL], payload)
            )
            self._rewrite(tid, root=tid)  # self-referential root pointer
            self.roots[dept["DNO"]] = tid
            pending.append((dept, tid))
        # Pass 2: every department's projects into the PROJECT table.
        project_tids: dict[int, list[tuple[dict, TID]]] = {}
        for dept, dept_tid in pending:
            tids = []
            for project in dept["PROJECTS"]:
                payload = _pack_text([project["PNO"], project["PNAME"]])
                tid = self._segments[KIND_PROJECT].insert_record(
                    _encode_node(KIND_PROJECT, dept_tid, dept_tid, _NIL, [_NIL], payload)
                )
                tids.append((project, tid))
            project_tids[dept["DNO"]] = tids
            self._link_chain(dept_tid, child_slot=0, chain=[t for _p, t in tids])
        # Pass 3: every department's equipment.
        for dept, dept_tid in pending:
            equip_tids = []
            for item in dept["EQUIP"]:
                payload = _pack_text([item["QU"], item["TYPE"]])
                tid = self._segments[KIND_EQUIPMENT].insert_record(
                    _encode_node(KIND_EQUIPMENT, dept_tid, dept_tid, _NIL, [], payload)
                )
                equip_tids.append(tid)
            self._link_chain(dept_tid, child_slot=1, chain=equip_tids)
        # Pass 4: every department's members.
        for dept, dept_tid in pending:
            for project, project_tid in project_tids[dept["DNO"]]:
                member_tids = []
                for member in project["MEMBERS"]:
                    payload = _pack_text([member["EMPNO"], member["FUNCTION"]])
                    tid = self._segments[KIND_MEMBER].insert_record(
                        _encode_node(
                            KIND_MEMBER, dept_tid, project_tid, _NIL, [], payload
                        )
                    )
                    member_tids.append(tid)
                self._link_chain(project_tid, child_slot=0, chain=member_tids)

    def _link_chain(self, father: TID, child_slot: int, chain: list[TID]) -> None:
        if not chain:
            return
        self._rewrite(father, child_at=(child_slot, chain[0]))
        for current, following in zip(chain, chain[1:]):
            self._rewrite(current, sibling=following)

    def _read(self, tid: TID) -> bytes:
        # Any segment can read: TIDs are global and they share the buffer.
        return self._segments[KIND_DEPARTMENT].read_record(tid)

    def _rewrite(
        self,
        tid: TID,
        root: Optional[TID] = None,
        sibling: Optional[TID] = None,
        child_at: Optional[tuple[int, TID]] = None,
    ) -> None:
        kind, old_root, father, old_sibling, children, payload = _decode_node(
            self._read(tid)
        )
        if root is not None:
            old_root = root
        if sibling is not None:
            old_sibling = sibling
        if child_at is not None:
            children[child_at[0]] = child_at[1]
        self._segments[kind].update_record(
            tid, _encode_node(kind, old_root, father, old_sibling, children, payload)
        )

    # -- retrieval ----------------------------------------------------------------------

    def retrieve(self, dno: int) -> Optional[dict]:
        """Reassemble one department by chasing pointers."""
        root = self.roots.get(dno)
        if root is None:
            return None
        _kind, _root, _father, _sibling, children, payload = _decode_node(
            self._read(root)
        )
        dno_text, mgrno, budget = _unpack_text(payload, 3)
        projects = []
        for project_tid in self._chain(children[0]):
            _k, _r, _f, _s, project_children, project_payload = _decode_node(
                self._read(project_tid)
            )
            pno, pname = _unpack_text(project_payload, 2)
            members = []
            for member_tid in self._chain(project_children[0]):
                *_ignored, member_payload = _decode_node(
                    self._read(member_tid)
                )
                empno, function = _unpack_text(member_payload, 2)
                members.append({"EMPNO": int(empno), "FUNCTION": function})
            projects.append({"PNO": int(pno), "PNAME": pname, "MEMBERS": members})
        equipment = []
        for equip_tid in self._chain(children[1]):
            *_ignored, equip_payload = _decode_node(
                self._read(equip_tid)
            )
            qu, type_ = _unpack_text(equip_payload, 2)
            equipment.append({"QU": int(qu), "TYPE": type_})
        return {
            "DNO": int(dno_text),
            "MGRNO": int(mgrno),
            "BUDGET": int(budget),
            "PROJECTS": projects,
            "EQUIP": equipment,
        }

    def _chain(self, first: TID):
        current = first
        while current != _NIL:
            yield current
            _k, _r, _f, sibling, _c, _p = _decode_node(
                self._read(current)
            )
            current = sibling

    # -- metrics -------------------------------------------------------------------------

    def pages_touched_for(self, dno: int) -> int:
        self.buffer.invalidate_cache()
        self.stats.reset()
        self.retrieve(dno)
        return len(self.stats.pages_touched)

    @property
    def total_pages(self) -> int:
        return sum(s.page_count for s in self._segments.values())
