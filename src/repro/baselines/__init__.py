"""Comparison systems the paper argues against.

* :mod:`repro.baselines.flat` — the pure relational alternative: complex
  objects "flattened" into 1NF tables, reassembled by runtime joins;
* :mod:`repro.baselines.lorie` — the /HL82, LP83/ "on top" approach:
  complex objects as chains of flat tuples linked by system pointer
  attributes (root / father / child / sibling).
"""

from repro.baselines.flat import FlatRelationalBaseline
from repro.baselines.lorie import LorieComplexObjects

__all__ = ["FlatRelationalBaseline", "LorieComplexObjects"]
