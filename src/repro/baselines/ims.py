"""An IMS-like hierarchical database (Fig 1's world).

Section 2: "In an IMS database this could be modelled by defining the
segment types and parent child relations as shown in Fig 1.  To retrieve an
object of this type 'navigational' language constructs like 'get next' (GN)
and 'get next within parent' (GNP) etc. have usually to be used which are
completely different from the high level language constructs used in
relational database systems."

This module implements that world so the contrast can be *run*: a segment
hierarchy (DEPARTMENT → PROJECT → MEMBER, DEPARTMENT → EQUIPMENT), records
stored in hierarchic sequence (HSAM-style) over the same page engine, and
the classical DL/I-ish calls:

* :meth:`IMSDatabase.gu` — Get Unique: position at the first record of a
  type matching a qualification, searching from the start;
* :meth:`IMSDatabase.gn` — Get Next: the next matching record in hierarchic
  sequence;
* :meth:`IMSDatabase.gnp` — Get Next within Parent: the next matching
  record inside the current parent's subtree.

``records_visited`` counts every record the navigation touches — the cost
metric the Fig 1 benchmark reports against the one-statement NF2 query.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import ExecutionError
from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.pagedfile import MemoryPagedFile
from repro.storage.segment import Segment
from repro.storage.tid import TID


@dataclass(frozen=True)
class SegmentType:
    """One segment (record) type of the hierarchy."""

    name: str
    fields: tuple[str, ...]
    children: tuple["SegmentType", ...] = ()

    def find(self, name: str) -> Optional["SegmentType"]:
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


#: Fig 1's hierarchy.
DEPARTMENTS_HIERARCHY = SegmentType(
    "DEPARTMENT",
    ("DNO", "MGRNO", "BUDGET"),
    (
        SegmentType(
            "PROJECT",
            ("PNO", "PNAME"),
            (SegmentType("MEMBER", ("EMPNO", "FUNCTION")),),
        ),
        SegmentType("EQUIPMENT", ("QU", "TYPE")),
    ),
)


@dataclass
class _Record:
    type_name: str
    level: int
    values: dict[str, Any]
    tid: TID


def _pack(values: Sequence[Any]) -> bytes:
    parts = []
    for value in values:
        raw = str(value).encode("utf-8")
        parts.append(struct.pack(">H", len(raw)) + raw)
    return b"".join(parts)


def _unpack(data: bytes, count: int) -> list[str]:
    out = []
    offset = 0
    for _ in range(count):
        length = struct.unpack_from(">H", data, offset)[0]
        offset += 2
        out.append(data[offset:offset + length].decode("utf-8"))
        offset += length
    return out


class IMSDatabase:
    """Records in hierarchic sequence with DL/I-style navigation."""

    def __init__(self, hierarchy: SegmentType = DEPARTMENTS_HIERARCHY,
                 buffer_capacity: int = 512):
        self.hierarchy = hierarchy
        self.buffer = BufferManager(MemoryPagedFile(), capacity=buffer_capacity)
        self._segment = Segment(self.buffer, name="ims")
        #: the hierarchic sequence: (type name, level, TID)
        self._sequence: list[tuple[str, int, TID]] = []
        self._position = -1
        #: navigation cost counter
        self.records_visited = 0

    @property
    def stats(self) -> BufferStats:
        return self.buffer.stats

    # -- loading --------------------------------------------------------------

    def load(self, roots: list[dict]) -> None:
        """Load nested plain data in hierarchic (preorder) sequence.

        Keys of the nested dicts are segment-type names for subtrees and
        field names for values — e.g. ``{"DNO": 314, ..., "PROJECT":
        [{...}], "EQUIPMENT": [{...}]}``.
        """
        for root in roots:
            self._load_record(self.hierarchy, root, level=0)

    def _load_record(self, segment_type: SegmentType, data: dict, level: int) -> None:
        values = [data[field_name] for field_name in segment_type.fields]
        tid = self._segment.insert_record(_pack(values))
        self._sequence.append((segment_type.name, level, tid))
        for child in segment_type.children:
            for child_data in data.get(child.name, []):
                self._load_record(child, child_data, level + 1)

    # -- navigation -------------------------------------------------------------

    def reset(self) -> None:
        self._position = -1
        self.records_visited = 0

    def _fetch(self, index: int) -> _Record:
        type_name, level, tid = self._sequence[index]
        segment_type = self.hierarchy.find(type_name)
        assert segment_type is not None
        values = _unpack(self._segment.read_record(tid), len(segment_type.fields))
        typed = {
            name: self._coerce(value)
            for name, value in zip(segment_type.fields, values)
        }
        return _Record(type_name, level, typed, tid)

    @staticmethod
    def _coerce(value: str) -> Any:
        try:
            return int(value)
        except ValueError:
            return value

    def _matches(self, record: _Record, type_name: Optional[str],
                 qualification: Optional[dict]) -> bool:
        if type_name is not None and record.type_name != type_name:
            return False
        if qualification:
            return all(record.values.get(k) == v for k, v in qualification.items())
        return True

    def gu(self, type_name: str, qualification: Optional[dict] = None) -> Optional[_Record]:
        """Get Unique: search from the beginning of the database."""
        self._position = -1
        return self.gn(type_name, qualification)

    def gn(self, type_name: Optional[str] = None,
           qualification: Optional[dict] = None) -> Optional[_Record]:
        """Get Next (in hierarchic sequence)."""
        index = self._position + 1
        while index < len(self._sequence):
            self.records_visited += 1
            record = self._fetch(index)
            if self._matches(record, type_name, qualification):
                self._position = index
                return record
            index += 1
        return None

    def gnp(self, type_name: Optional[str] = None,
            qualification: Optional[dict] = None) -> Optional[_Record]:
        """Get Next within Parent: stays inside the current record's
        parent subtree (the paper's GNP)."""
        if self._position < 0 or self._parentage_level < 0:
            raise ExecutionError(
                "GNP needs established parentage (GU/GN + set_parentage)"
            )
        # The parent's subtree is everything following it with a strictly
        # greater level; the first record at the parent's level (or above)
        # ends it.
        index = self._position + 1
        while index < len(self._sequence):
            if self._sequence[index][1] <= self._parentage_level:
                return None  # left the parent's subtree
            self.records_visited += 1
            record = self._fetch(index)
            if self._matches(record, type_name, qualification):
                self._position = index
                return record
            index += 1
        return None

    def set_parentage(self) -> None:
        """Establish parentage at the current position (DL/I does this
        implicitly on GU/GN; we make it explicit for clarity)."""
        if self._position < 0:
            raise ExecutionError("no current position")
        self._parentage_level = self._sequence[self._position][1]
        self._parentage_position = self._position

    _parentage_level: int = -1
    _parentage_position: int = -1

    @property
    def size(self) -> int:
        return len(self._sequence)
