"""Concurrency control for the AIM-II reproduction.

Two cooperating layers (see ``docs/CONCURRENCY.md``):

* **Locks** (:mod:`repro.concurrency.locks`) — long-duration, transaction
  scoped, deadlock-detected.  Two granules: whole tables (intention modes
  IS/IX plus S/X) and single complex objects keyed by their root TID —
  the paper's *local address space* unit from Section 4.1.
* **Sessions** (:mod:`repro.concurrency.session`) — one per client
  thread/connection; route statements through the lock manager and scope
  transactions.

Latches (short internal mutexes protecting in-memory structures) also
live in :mod:`repro.concurrency.locks`.
"""

from repro.concurrency.locks import Latch, LockManager, LockMode
from repro.concurrency.session import Session

__all__ = ["Latch", "LockManager", "LockMode", "Session"]
