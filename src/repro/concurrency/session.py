"""Sessions: per-client connections routed through the lock manager.

A :class:`Session` is the unit of concurrency the server hands to each
client thread.  It wraps one shared :class:`~repro.database.Database` and
scopes locking:

* **autocommit** (the default) — every statement runs in its own lock
  transaction, released when the statement finishes (after its WAL
  commit), exactly mirroring the single-user path's semantics;
* **explicit** — ``with session.transaction(): ...`` holds locks across
  statements (strict two-phase locking) and maps onto the engine's
  single-user :meth:`~repro.database.Database.transaction` scope, which
  is entered lazily at the first write.  Writers serialize on a global
  WAL token taken *through* the lock manager, so writer/reader waits all
  participate in deadlock detection.

Reads take table-``IS`` + object-``S`` locks as the planner's candidate
stream delivers objects; writes take table-``IX`` + object-``X`` (DDL
takes table-``X``).  A deadlock or lock timeout surfaces as
:class:`~repro.errors.ConcurrencyError` (an ``ExecutionError``); inside
an explicit transaction it also aborts the transaction — already-applied
statements are rolled back and the locks released so the surviving
transactions can proceed.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterable, Optional

from repro.concurrency.locks import LockMode, Resource
from repro.errors import ConcurrencyError, ExecutionError
from repro.obs import TRACER

if TYPE_CHECKING:
    from repro.database import Database
    from repro.model.values import TableValue
    from repro.storage.tid import TID

#: the global single-writer token (see docs/CONCURRENCY.md) — taken in X
#: by any session about to mutate, through the lock manager so a writer
#: waiting behind another writer shows up in the wait-for graph.
WAL_RESOURCE: Resource = ("wal",)

_session_counter = itertools.count(1)


class Session:
    """One client's connection to a shared :class:`Database`.

    Thread affinity: a session is meant to be driven by one thread at a
    time (each server connection owns one).  Many sessions on one
    database may run concurrently.
    """

    def __init__(
        self,
        db: "Database",
        name: Optional[str] = None,
        lock_timeout: Optional[float] = None,
    ):
        self._db = db
        self.name = name or f"session-{next(_session_counter)}"
        #: per-acquire lock timeout (None: the lock manager's default)
        self.lock_timeout = lock_timeout
        #: lock transaction id while a scope (statement or explicit
        #: transaction) is open
        self._txn: Optional[int] = None
        self._explicit: Optional["_SessionTransaction"] = None
        #: the MVCC snapshot this session's statements read from (None:
        #: 2PL database, or between statements).  Statement-scoped in
        #: autocommit; pinned for the whole scope of
        #: ``transaction(isolation="snapshot")``.
        self._snapshot = None
        self._closed = False
        # per-statement lock accounting (read by EXPLAIN ANALYZE)
        self._stmt_lock_requests = 0
        self._stmt_lock_waits = 0
        self.last_lock_requests = 0
        self.last_lock_waits = 0
        #: observability: SYS.SESSIONS exposes these
        self.thread_name = threading.current_thread().name
        self.statements = 0
        #: the statement this session is inside right now (ASH samples it)
        self.current_statement: Optional[str] = None
        #: OS thread ident while inside a statement — lets the wait
        #: registry and the ASH sampler read this session's live state
        self.thread_ident: Optional[int] = None
        #: lifetime wait totals {event: [count, time_ms]} (SYS.SESSIONS)
        self.wait_totals: dict[str, list] = {}
        #: the last finished statement's wait breakdown
        self.last_waits: dict[str, tuple[int, float]] = {}
        self._waits_latch = threading.Lock()
        db._register_session(self)

    # -- plumbing ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError(f"session {self.name!r} is closed")
        tx = self._explicit
        if tx is not None and tx.aborted:
            raise ConcurrencyError(
                f"session {self.name!r}: the current transaction was "
                "aborted (deadlock victim or lock timeout); leave the "
                "transaction block and retry"
            )

    @contextmanager
    def _statement(self, description: Optional[str] = None):
        """Route one statement through this session.

        Publishes the session in the database's thread-local context (so
        engine read/write paths acquire locks through it), opens a
        statement-scoped lock transaction in autocommit mode, and — on a
        concurrency abort inside an explicit transaction — rolls the
        transaction back immediately so the held locks stop blocking the
        survivors even if the caller swallows the exception.

        *description* (the statement text, or an API-call label) plus
        the thread ident published here are what the ASH sampler and the
        wait registry use to attribute this session's live state.
        """
        self._check_open()
        ctx = self._db._session_ctx
        previous = getattr(ctx, "current", None)
        ctx.current = self
        autocommit = self._txn is None
        if autocommit:
            self._txn = self._db.locks.begin(self.name)
        snapshot = None
        if self._db.mvcc is not None and self._snapshot is None:
            # read-committed statement snapshot: this statement sees every
            # commit up to now, and nothing that commits while it runs.
            # (Inside transaction(isolation="snapshot") the pinned
            # snapshot is already installed and kept instead.)
            snapshot = self._db.mvcc.acquire(session=self.name)
            if self._explicit is not None and self._explicit._db_txn is not None:
                # mid-transaction statement: tag the snapshot with the
                # open write scope so it reads the txn's own pending work
                snapshot.txn = self._db.mvcc.current_txn()
            self._snapshot = snapshot
        self._stmt_lock_requests = 0
        self._stmt_lock_waits = 0
        self.thread_name = threading.current_thread().name
        self.thread_ident = threading.get_ident()
        self.current_statement = description
        self.statements += 1
        previous_label = TRACER.set_session(self.name)
        try:
            yield
        except ConcurrencyError:
            if not autocommit and self._explicit is not None:
                self._explicit.abort()
            raise
        finally:
            TRACER.set_session(previous_label)
            self.current_statement = None
            self.last_lock_requests = self._stmt_lock_requests
            self.last_lock_waits = self._stmt_lock_waits
            # API-path statements (session.insert(...) etc.) bypass
            # Database.execute, so their waits are still parked in the
            # registry — collect them here; the execute path has already
            # drained them into _note_waits via _record_statement
            from repro.obs import WAITS

            leftover = WAITS.take_statement()
            if leftover:
                self._note_waits(leftover)
            if snapshot is not None:
                self._db.mvcc.release(snapshot)
                if self._snapshot is snapshot:
                    self._snapshot = None
            if autocommit and self._txn is not None:
                self._db.locks.release_all(self._txn)
                self._txn = None
            ctx.current = previous

    def _note_waits(self, waits: dict[str, tuple[int, float]]) -> None:
        """Fold one statement's wait breakdown into the session's
        lifetime totals (called from the engine's finish line)."""
        if not waits:
            return
        with self._waits_latch:
            self.last_waits = dict(waits)
            for event, (count, ms) in waits.items():
                cell = self.wait_totals.get(event)
                if cell is None:
                    self.wait_totals[event] = [count, ms]
                else:
                    cell[0] += count
                    cell[1] += ms

    def wait_summary(self) -> dict[str, tuple[int, float]]:
        """Lifetime ``{event: (count, time_ms)}`` for this session."""
        with self._waits_latch:
            return {e: (c[0], c[1]) for e, c in self.wait_totals.items()}

    def lock(self, resource: Resource, mode: LockMode) -> None:
        """Acquire *mode* on *resource* for the current scope (engine
        hook — called from the database's read/write paths)."""
        if self._txn is None:  # outside any statement scope: nothing to tie
            return             # the lock to (engine running single-user)
        self._stmt_lock_requests += 1
        waited = self._db.locks.acquire(
            self._txn, resource, mode, timeout=self.lock_timeout
        )
        if waited:
            self._stmt_lock_waits += 1

    def _before_write(self) -> None:
        """First-mutation hook, called from the engine's WAL scope.

        Serializes writers on the global WAL token (single-writer commit
        ordering — the WAL has one transaction slot) and, inside an
        explicit session transaction, lazily enters the engine's
        single-user transaction scope."""
        self.lock(WAL_RESOURCE, LockMode.X)
        if self._snapshot is not None and self._db.mvcc is not None:
            # a commit may have landed between statement start and token
            # grant — a read-committed write must see it.  Pinned
            # (snapshot-isolation) snapshots stay put and rely on
            # first-committer-wins conflict detection instead.
            self._db.mvcc.refresh(self._snapshot)
        tx = self._explicit
        if tx is not None:
            tx.ensure_db_transaction()

    # -- public API --------------------------------------------------------

    def execute(self, text: str) -> Any:
        """Execute any statement (see :meth:`Database.execute`)."""
        with self._statement(text.strip()):
            return self._db.execute(text)

    def query(self, text: str) -> "TableValue":
        with self._statement(text.strip()):
            return self._db.query(text)

    def insert(self, table: str, row: Any, **kwargs) -> "TID":
        with self._statement(f"<api> INSERT INTO {table}"):
            return self._db.insert(table, row, **kwargs)

    def insert_many(self, table: str, rows: Iterable[Any], **kwargs) -> list:
        with self._statement(f"<api> INSERT MANY INTO {table}"):
            return self._db.insert_many(table, rows, **kwargs)

    def update(self, table: str, tid: "TID", changes, **kwargs):
        with self._statement(f"<api> UPDATE {table}"):
            return self._db.update(table, tid, changes, **kwargs)

    def delete(self, table: str, tid: "TID", **kwargs) -> None:
        with self._statement(f"<api> DELETE FROM {table}"):
            self._db.delete(table, tid, **kwargs)

    def transaction(
        self, isolation: Optional[str] = None
    ) -> "_SessionTransaction":
        """A multi-statement atomic scope::

            with session.transaction():
                session.execute("UPDATE ...")
                session.execute("DELETE ...")  # atomically, under locks

        *isolation* picks the concurrency protocol:

        * ``"2pl"`` — strict two-phase locking (the only choice on a
          non-MVCC database);
        * ``"snapshot"`` — snapshot isolation (MVCC databases): every
          read in the scope sees the one snapshot taken at entry, and a
          write to a row version committed after that snapshot raises
          :class:`~repro.errors.SerializationError`
          (first-committer-wins);
        * ``None`` (default) — ``"snapshot"`` when the database runs
          MVCC, else ``"2pl"``.
        """
        self._check_open()
        if isolation not in (None, "2pl", "snapshot"):
            raise ExecutionError(
                f"unknown isolation level {isolation!r}; "
                "expected '2pl' or 'snapshot'"
            )
        if isolation == "snapshot" and self._db.mvcc is None:
            raise ExecutionError(
                "isolation='snapshot' needs an MVCC database — open it "
                "with Database(mvcc=True)"
            )
        if isolation is None:
            isolation = "snapshot" if self._db.mvcc is not None else "2pl"
        return _SessionTransaction(self, isolation=isolation)

    @property
    def in_transaction(self) -> bool:
        """True inside an explicit ``session.transaction()`` block."""
        return self._explicit is not None

    def locks_held(self) -> list:
        """This session's current grants (for tests and ``.locks``)."""
        if self._txn is None:
            return []
        return [
            info
            for info in self._db.locks.snapshot()
            if info.txn == self._txn and info.granted
        ]

    def close(self) -> None:
        if self._closed:
            return
        if self._explicit is not None:
            self._explicit.abort()
        if self._txn is not None:
            self._db.locks.release_all(self._txn)
            self._txn = None
        self._closed = True
        self._db._unregister_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "in-txn" if self._explicit is not None else "idle"
        )
        return f"<Session {self.name} [{state}]>"


class _SessionTransaction:
    """Explicit transaction scope for one session (strict 2PL).

    The engine's single-user :class:`~repro.database._Transaction` is
    entered lazily at the first write — read-only transactions never
    touch the WAL, and two sessions can hold read locks concurrently
    without fighting over the engine's single transaction slot (writers
    serialize on the WAL token before entering it)."""

    def __init__(self, session: Session, isolation: str = "2pl"):
        self._session = session
        self.isolation = isolation
        self._db_txn = None  # the engine's _Transaction, once entered
        self._pinned = None  # the scope's pinned MVCC snapshot, if any
        self.aborted = False
        self._entered = False

    def ensure_db_transaction(self) -> None:
        """Enter the engine's transaction scope at the first write (the
        caller already holds the WAL token in X)."""
        if self._db_txn is None and not self.aborted:
            txn = self._session._db.transaction()
            txn.__enter__()
            self._db_txn = txn

    def abort(self) -> None:
        """Roll back applied work and release this transaction's locks —
        used for deadlock victims / lock timeouts and session close.

        Rollback runs *before* the locks drop (the victim still owns its
        write set), then ``release_all`` breaks the cycle."""
        if self.aborted:
            return
        self.aborted = True
        session = self._session
        self._release_pinned()
        if self._db_txn is not None:
            exc = ConcurrencyError("transaction aborted")
            try:
                self._db_txn.__exit__(type(exc), exc, None)
            finally:
                self._db_txn = None
        if session._txn is not None:
            session._db.locks.release_all(session._txn)
            session._txn = None

    def __enter__(self) -> "_SessionTransaction":
        session = self._session
        session._check_open()
        if session._txn is not None:
            raise ExecutionError(
                f"session {session.name!r} already has an active transaction"
            )
        session._txn = session._db.locks.begin(session.name)
        if self.isolation == "snapshot":
            # one snapshot for the whole scope, registered so version GC
            # keeps everything it can see until the scope ends
            self._pinned = session._db.mvcc.acquire(
                pinned=True, isolation="snapshot", session=session.name
            )
            session._snapshot = self._pinned
        session._explicit = self
        self._entered = True
        return self

    def _release_pinned(self) -> None:
        if self._pinned is None:
            return
        session = self._session
        session._db.mvcc.release(self._pinned)
        if session._snapshot is self._pinned:
            session._snapshot = None
        self._pinned = None

    def __exit__(self, exc_type, exc, tb) -> bool:
        session = self._session
        try:
            if self.aborted:
                # rolled back mid-scope (deadlock victim); surface it on a
                # clean exit so the caller cannot mistake it for a commit
                if exc_type is None:
                    raise ConcurrencyError(
                        f"session {session.name!r}: transaction was aborted "
                        "(deadlock victim or lock timeout) — its effects "
                        "were rolled back; retry"
                    )
                return False
            if exc_type is not None:
                if self._db_txn is not None:
                    # roll back under our locks, then release below
                    ctx = session._db._session_ctx
                    previous = getattr(ctx, "current", None)
                    ctx.current = session
                    try:
                        self._db_txn.__exit__(exc_type, exc, tb)
                    finally:
                        ctx.current = previous
                        self._db_txn = None
                return False
            if self._db_txn is not None:
                # commit: WAL fsync happens in here, *before* locks drop
                ctx = session._db._session_ctx
                previous = getattr(ctx, "current", None)
                ctx.current = session
                try:
                    self._db_txn.__exit__(None, None, None)
                finally:
                    ctx.current = previous
                    self._db_txn = None
            return False
        finally:
            session._explicit = None
            self._release_pinned()
            if session._txn is not None:
                session._db.locks.release_all(session._txn)
                session._txn = None
