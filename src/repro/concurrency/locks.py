"""Hierarchical two-level locking and internal latches.

The lock granule hierarchy mirrors the paper's storage design: every
complex object owns a *local address space* reachable from one root TID
(Section 4.1), so a single root TID names everything a statement touches
inside one object.  The :class:`LockManager` therefore locks

* **tables** in intention modes (``IS``/``IX``) or absolute modes
  (``S``/``X`` for DDL and full-table operations), and
* **complex objects** (root TIDs) in ``S``/``X``.

Deadlocks are detected with a wait-for graph; the youngest waiter in the
cycle (highest transaction id) is aborted with :class:`DeadlockError`.
Waits beyond the per-acquire timeout raise :class:`LockTimeoutError`.
Both derive from :class:`~repro.errors.ExecutionError` so they surface to
clients like any other statement failure.

:class:`Latch` is the short-duration cousin: a plain re-entrant mutex
guarding in-memory structures (buffer frame maps, WAL append ordering,
index dictionaries, the catalog).  Latches are never held across waits
on locks, so they cannot deadlock with them.

Metrics (when :mod:`repro.obs` profiling is enabled):

* ``lock.waits`` — a lock request had to block at least once
* ``lock.deadlocks`` — a waiter was aborted as a deadlock victim
* ``lock.timeouts`` — a waiter gave up after its timeout
* ``latch.contention`` — a latch acquire found the latch held

Every blocking wait additionally reports into the wait-event registry
(:data:`repro.obs.WAITS`): lock waits as ``Lock/<level><mode>`` named by
the *requested* mode (``Lock/TableIS``, ``Lock/ObjectX``, ``Lock/Wal``),
contended latches as ``Latch/<name>`` — so blocked time is attributed to
the statement and session that paid for it (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Optional

from repro import obs
from repro.errors import DeadlockError, LockTimeoutError

#: A lockable resource — a tuple whose first element names the level,
#: e.g. ``("table", "DEPARTMENTS")``, ``("object", "DEPARTMENTS", tid)``,
#: or the global writer token ``("wal",)``.
Resource = tuple


class LockMode(enum.Enum):
    """Lock modes, intention modes included (Gray's hierarchy subset)."""

    IS = "IS"  #: intention shared — will read individual objects below
    IX = "IX"  #: intention exclusive — will write individual objects below
    S = "S"    #: shared — read the whole resource
    X = "X"    #: exclusive — write the whole resource

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: mode -> set of modes it is compatible with (standard matrix).
_COMPAT: dict[LockMode, frozenset[LockMode]] = {
    LockMode.IS: frozenset({LockMode.IS, LockMode.IX, LockMode.S}),
    LockMode.IX: frozenset({LockMode.IS, LockMode.IX}),
    LockMode.S: frozenset({LockMode.IS, LockMode.S}),
    LockMode.X: frozenset(),
}

#: mode -> modes it subsumes (holding the key grants the values).
_COVERS: dict[LockMode, frozenset[LockMode]] = {
    LockMode.IS: frozenset({LockMode.IS}),
    LockMode.IX: frozenset({LockMode.IX, LockMode.IS}),
    LockMode.S: frozenset({LockMode.S, LockMode.IS}),
    LockMode.X: frozenset({LockMode.X, LockMode.S, LockMode.IX, LockMode.IS}),
}


def compatible(requested: LockMode, held: LockMode) -> bool:
    """True when ``requested`` can coexist with an already granted ``held``."""
    return held in _COMPAT[requested]


@dataclass
class _ResourceLocks:
    """Grant table for one resource: transaction id -> granted modes."""

    holders: dict[int, set[LockMode]] = field(default_factory=dict)

    def conflicts(self, txn: int, mode: LockMode) -> list[int]:
        """Transaction ids whose grants block ``txn`` requesting ``mode``."""
        blockers = []
        for other, modes in self.holders.items():
            if other == txn:
                continue
            if any(not compatible(mode, held) for held in modes):
                blockers.append(other)
        return blockers

    def grants(self, txn: int, mode: LockMode) -> bool:
        """True when ``txn`` already holds a mode covering ``mode``."""
        held = self.holders.get(txn)
        if not held:
            return False
        return any(mode in _COVERS[h] for h in held)


@dataclass
class _Waiter:
    txn: int
    resource: Resource
    mode: LockMode
    #: set by the deadlock detector; the waiter re-checks it on wake-up
    victim: bool = False


@dataclass(frozen=True)
class LockInfo:
    """One row of :meth:`LockManager.snapshot` — for ``.locks`` and tests."""

    txn: int
    txn_name: str
    resource: Resource
    mode: LockMode
    granted: bool

    def describe(self) -> str:
        level = self.resource[0]
        rest = ".".join(str(part) for part in self.resource[1:])
        state = "granted" if self.granted else "WAITING"
        where = f"{level}:{rest}" if rest else level
        return f"txn {self.txn} ({self.txn_name}) {self.mode.value} on {where} [{state}]"


class LockManager:
    """Two-level hierarchical lock manager with deadlock detection.

    One global condition variable serializes the grant tables — lock
    traffic in this prototype is dwarfed by statement execution, so a
    single latch keeps the invariants easy to audit.  All blocking waits
    happen on the condition, never while holding latches elsewhere.
    """

    def __init__(self, default_timeout: float = 5.0) -> None:
        self._cond = threading.Condition()
        self._resources: dict[Resource, _ResourceLocks] = {}
        self._waiters: list[_Waiter] = []
        #: txn id -> resources it holds locks on (for release_all)
        self._held: dict[int, set[Resource]] = {}
        self._names: dict[int, str] = {}
        self._ids = itertools.count(1)
        self.default_timeout = default_timeout
        # counters mirrored into repro.obs when profiling is on
        self.grants = 0
        self.waits = 0
        self.deadlocks = 0
        self.timeouts = 0

    # -- transactions ------------------------------------------------------

    def begin(self, name: str = "?") -> int:
        """Register a lock transaction; ids are monotonic, so the *youngest*
        transaction is the one with the highest id."""
        with self._cond:
            txn = next(self._ids)
            self._names[txn] = name
            self._held[txn] = set()
            return txn

    def release_all(self, txn: int) -> None:
        """Strict 2PL release: drop every lock ``txn`` holds."""
        with self._cond:
            for resource in self._held.pop(txn, set()):
                table = self._resources.get(resource)
                if table is None:
                    continue
                table.holders.pop(txn, None)
                if not table.holders:
                    del self._resources[resource]
            self._names.pop(txn, None)
            self._cond.notify_all()

    # -- acquisition -------------------------------------------------------

    def acquire(
        self,
        txn: int,
        resource: Resource,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> bool:
        """Grant ``mode`` on ``resource`` to ``txn``, blocking if needed.

        Returns ``True`` when the call actually had to wait (so callers
        can annotate EXPLAIN output).  Raises :class:`DeadlockError` when
        this transaction is chosen as a deadlock victim and
        :class:`LockTimeoutError` after ``timeout`` seconds (defaulting
        to the manager-wide timeout)."""
        limit = self.default_timeout if timeout is None else timeout
        deadline = time.monotonic() + limit
        waited = False
        with self._cond:
            if self._resources.setdefault(resource, _ResourceLocks()).grants(
                txn, mode
            ):
                return False
            waiter: Optional[_Waiter] = None
            wait_token = None
            try:
                while True:
                    # re-resolve the grant table every iteration: while this
                    # waiter slept, a release_all may have deleted the (then
                    # empty) entry, and granting into a stale object would
                    # let the *next* requester double-grant on a fresh one
                    table = self._resources.setdefault(resource, _ResourceLocks())
                    blockers = table.conflicts(txn, mode)
                    if not blockers:
                        table.holders.setdefault(txn, set()).add(mode)
                        self._held.setdefault(txn, set()).add(resource)
                        self.grants += 1
                        return waited
                    if waiter is None:
                        waiter = _Waiter(txn, resource, mode)
                        self._waiters.append(waiter)
                        waited = True
                        self.waits += 1
                        obs.METRICS.inc("lock.waits")
                        # wait-event attribution starts at the first block
                        wait_token = obs.WAITS.enter(
                            obs.lock_event(resource, mode),
                            resource=".".join(str(p) for p in resource),
                            blockers=sorted(blockers),
                        )
                    self._abort_deadlock_victim()
                    if waiter.victim:
                        self.deadlocks += 1
                        obs.METRICS.inc("lock.deadlocks")
                        raise DeadlockError(
                            f"transaction {txn} ({self._names.get(txn, '?')}) "
                            f"aborted as deadlock victim waiting for "
                            f"{mode.value} on {resource}"
                        )
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.timeouts += 1
                        obs.METRICS.inc("lock.timeouts")
                        raise LockTimeoutError(
                            f"lock timeout ({limit:.3g}s) waiting for "
                            f"{mode.value} on {resource} "
                            f"(held by txns {sorted(blockers)})"
                        )
                    self._cond.wait(min(remaining, 0.05))
            finally:
                if wait_token is not None:
                    obs.WAITS.exit(wait_token)
                if waiter is not None:
                    self._waiters.remove(waiter)
                current = self._resources.get(resource)
                if current is not None and not current.holders:
                    del self._resources[resource]

    # -- deadlock detection ------------------------------------------------

    def _wait_for_edges(self) -> dict[int, set[int]]:
        """Wait-for graph: waiting txn -> txns holding conflicting grants."""
        edges: dict[int, set[int]] = {}
        for waiter in self._waiters:
            table = self._resources.get(waiter.resource)
            if table is None:
                continue
            blockers = table.conflicts(waiter.txn, waiter.mode)
            if blockers:
                edges.setdefault(waiter.txn, set()).update(blockers)
        return edges

    def _find_cycle(self, edges: dict[int, set[int]]) -> Optional[set[int]]:
        """Return the set of txns on some wait-for cycle, or None."""
        for start in edges:
            stack = [(start, iter(edges.get(start, ())))]
            on_path = {start}
            path = [start]
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if child in on_path:
                        return set(path[path.index(child):])
                    if child in edges:
                        stack.append((child, iter(edges.get(child, ()))))
                        on_path.add(child)
                        path.append(child)
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    on_path.discard(node)
                    path.pop()
        return None

    def _abort_deadlock_victim(self) -> None:
        """Flag the youngest waiter on a wait-for cycle as the victim.

        Called with the condition held.  Every transaction on a cycle is
        by construction waiting, so the victim has a waiter record to
        flag; it raises :class:`DeadlockError` from its own wait loop."""
        edges = self._wait_for_edges()
        cycle = self._find_cycle(edges)
        if not cycle:
            return
        victim = max(cycle)  # ids are monotonic: max == youngest
        for waiter in self._waiters:
            if waiter.txn == victim:
                waiter.victim = True
        self._cond.notify_all()

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> list[LockInfo]:
        """Stable view of every grant and every waiter (for ``.locks``)."""
        with self._cond:
            rows: list[LockInfo] = []
            for resource, table in sorted(
                self._resources.items(), key=lambda kv: repr(kv[0])
            ):
                for txn, modes in sorted(table.holders.items()):
                    for mode in sorted(modes, key=lambda m: m.value):
                        rows.append(
                            LockInfo(
                                txn, self._names.get(txn, "?"), resource, mode, True
                            )
                        )
            for waiter in self._waiters:
                rows.append(
                    LockInfo(
                        waiter.txn,
                        self._names.get(waiter.txn, "?"),
                        waiter.resource,
                        waiter.mode,
                        False,
                    )
                )
            return rows

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "lock.granted": sum(
                    len(modes)
                    for table in self._resources.values()
                    for modes in table.holders.values()
                ),
                "lock.waiting": len(self._waiters),
                "lock.grants": self.grants,
                "lock.waits": self.waits,
                "lock.deadlocks": self.deadlocks,
                "lock.timeouts": self.timeouts,
            }


class Latch:
    """A short-duration re-entrant mutex with contention accounting.

    Usage: ``with latch: ...`` around accesses to a shared in-memory
    structure.  The non-blocking fast path keeps the cost near a plain
    ``RLock`` when uncontended; a failed try-acquire counts one
    ``latch.contention`` before blocking."""

    __slots__ = ("_lock", "name", "contention")

    def __init__(self, name: str = "latch") -> None:
        self._lock = threading.RLock()
        self.name = name
        self.contention = 0

    def acquire(self) -> None:
        if self._lock.acquire(blocking=False):
            return
        self.contention += 1
        obs.METRICS.inc("latch.contention", label=self.name)
        with obs.wait_event(f"Latch/{self.name}"):
            self._lock.acquire()

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "Latch":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
