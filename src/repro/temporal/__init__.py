"""Time-version support (ASOF queries)."""

from repro.temporal.versions import VersionStore, Timestamp, canonical_timestamp

__all__ = ["VersionStore", "Timestamp", "canonical_timestamp"]
