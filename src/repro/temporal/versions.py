"""Time versions for versioned tables (Section 5's temporal support).

A versioned table keeps, per logical object, a chain of committed states
with ``[valid_from, valid_to)`` intervals.  ``ASOF t`` queries (the only
temporal operator the AIM-II prototype surfaced at the language level)
reconstruct the table as of *t* by picking the version whose interval
contains *t*.

Mutations of versioned objects are copy-on-write at the object level: the
old stored object stays untouched as history and a new object is stored.
(The paper versions at the subtuple level for space reasons /DLW84, Lu84/;
object-level COW has identical ASOF semantics — the trade-off is recorded
in DESIGN.md and measured in the temporal ablation benchmark.)

Timestamps may be dates (the paper's "ASOF January 15th, 1984") or
monotonically increasing logical integers; they are compared on a common
axis via :func:`canonical_timestamp`.  One table must stick to one axis
for its *write* stamps: a date maps to its ordinal day (~738k for current
dates) while logical stamps count from 1, so mixing the two on a single
table would silently mis-order its versions — :meth:`VersionStore._stamp`
rejects the mix with a :class:`TemporalError` instead.  (Reads — ``ASOF``
— may probe with either representation; they only compare, never stamp.)
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import TemporalError
from repro.mvcc import visibility
from repro.storage.tid import TID

Timestamp = Union[int, float, datetime.date]

#: end-of-time marker for open intervals
_FOREVER = float("inf")


def canonical_timestamp(value: Timestamp) -> float:
    """Map a timestamp to the common comparison axis.

    Dates map to their ordinal day; logical integers count within a day
    (scaled down), so interleaving dates and logical ticks stays ordered as
    long as logical ticks are used consistently.
    """
    if isinstance(value, datetime.datetime):
        return value.date().toordinal() + (
            value - datetime.datetime.combine(value.date(), datetime.time())
        ).total_seconds() / 86_400.0
    if isinstance(value, datetime.date):
        return float(value.toordinal())
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TemporalError(f"invalid timestamp {value!r}")
    return float(value)


def timestamp_axis(value: Timestamp) -> str:
    """Which comparison axis a timestamp lives on: ``date`` or ``logical``."""
    if isinstance(value, datetime.date):  # datetime.datetime included
        return "date"
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TemporalError(f"invalid timestamp {value!r}")
    return "logical"


@dataclass
class Version:
    valid_from: float
    valid_to: float  # exclusive; _FOREVER while current
    root_tid: Optional[TID]  # None encodes a deletion tombstone

    @property
    def is_current(self) -> bool:
        return self.valid_to == _FOREVER


@dataclass
class VersionChain:
    object_id: int
    versions: list[Version] = field(default_factory=list)

    def at(self, when: float) -> Optional[Version]:
        for version in self.versions:
            # the same predicate MVCC snapshot reads use (repro.mvcc):
            # valid_from inclusive, valid_to exclusive
            if visibility.interval_contains(
                version.valid_from, version.valid_to, when
            ):
                return version
        return None

    @property
    def current(self) -> Optional[Version]:
        if self.versions and self.versions[-1].is_current:
            return self.versions[-1]
        return None


class VersionStore:
    """Version chains for one versioned table."""

    def __init__(self) -> None:
        self._chains: dict[int, VersionChain] = {}
        self._next_object_id = 1
        self._last_timestamp = 0.0
        #: axis of the explicit write stamps seen so far (None until one is)
        self._axis: Optional[str] = None

    # -- recording -------------------------------------------------------------

    def _note_axis(self, at: Timestamp) -> None:
        axis = timestamp_axis(at)
        if self._axis is None:
            self._axis = axis
        elif self._axis != axis:
            raise TemporalError(
                f"cannot stamp a {axis} timestamp {at!r} on a table whose "
                f"versions use {self._axis} timestamps: the two axes are not "
                "comparable and versions would be silently mis-ordered"
            )

    def _stamp(self, at: Optional[Timestamp]) -> float:
        if at is not None:
            self._note_axis(at)
        when = canonical_timestamp(at) if at is not None else self._last_timestamp + 1.0
        if when < self._last_timestamp:
            raise TemporalError(
                f"timestamps must not go backwards ({when} < {self._last_timestamp})"
            )
        self._last_timestamp = when
        return when

    def record_insert(self, root_tid: TID, at: Optional[Timestamp] = None) -> int:
        """Start a new chain; returns the logical object id."""
        when = self._stamp(at)
        object_id = self._next_object_id
        self._next_object_id += 1
        self._chains[object_id] = VersionChain(
            object_id, [Version(when, _FOREVER, root_tid)]
        )
        return object_id

    def record_update(
        self, object_id: int, new_root_tid: TID, at: Optional[Timestamp] = None
    ) -> None:
        self._close_current(object_id, at, new_root_tid)

    def record_delete(self, object_id: int, at: Optional[Timestamp] = None) -> None:
        self._close_current(object_id, at, None)

    def _close_current(
        self, object_id: int, at: Optional[Timestamp], new_root: Optional[TID]
    ) -> None:
        chain = self._chains.get(object_id)
        if chain is None or chain.current is None:
            raise TemporalError(f"object {object_id} has no current version")
        when = self._stamp(at)
        current = chain.current
        if when < current.valid_from:
            raise TemporalError("timestamps must not go backwards")
        current.valid_to = when
        if new_root is not None:
            chain.versions.append(Version(when, _FOREVER, new_root))

    # -- reading -------------------------------------------------------------------

    def current_roots(self) -> list[TID]:
        out = []
        for chain in self._chains.values():
            version = chain.current
            if version is not None and version.root_tid is not None:
                out.append(version.root_tid)
        return out

    def roots_asof(self, when: Timestamp) -> list[TID]:
        """Root TIDs of every object version valid at *when*."""
        point = canonical_timestamp(when)
        out = []
        for chain in self._chains.values():
            version = chain.at(point)
            if version is not None and version.root_tid is not None:
                out.append(version.root_tid)
        return out

    def object_id_of(self, root_tid: TID) -> int:
        for chain in self._chains.values():
            version = chain.current
            if version is not None and version.root_tid == root_tid:
                return chain.object_id
        raise TemporalError(f"{root_tid} is not a current version")

    def history(self, object_id: int) -> list[Version]:
        chain = self._chains.get(object_id)
        if chain is None:
            raise TemporalError(f"unknown object {object_id}")
        return list(chain.versions)

    def all_roots_ever(self) -> list[TID]:
        """Every stored version's root (history included) — used by the
        space-overhead benchmark."""
        out = []
        for chain in self._chains.values():
            for version in chain.versions:
                if version.root_tid is not None:
                    out.append(version.root_tid)
        return out

    @property
    def version_count(self) -> int:
        return sum(len(c.versions) for c in self._chains.values())

    # -- persistence -------------------------------------------------------------

    def state(self) -> dict:
        """A JSON-serializable snapshot (used by Database.save)."""
        return {
            "next_object_id": self._next_object_id,
            "last_timestamp": self._last_timestamp,
            "axis": self._axis,
            "chains": [
                {
                    "object_id": chain.object_id,
                    "versions": [
                        {
                            "from": v.valid_from,
                            "to": None if v.valid_to == _FOREVER else v.valid_to,
                            "tid": None if v.root_tid is None
                            else [v.root_tid.page, v.root_tid.slot],
                        }
                        for v in chain.versions
                    ],
                }
                for chain in self._chains.values()
            ],
        }

    @classmethod
    def restore(cls, state: dict) -> "VersionStore":
        store = cls()
        store._next_object_id = state["next_object_id"]
        store._last_timestamp = state["last_timestamp"]
        store._axis = state.get("axis")  # pre-MVCC sidecars lack the key
        for chain_state in state["chains"]:
            chain = VersionChain(chain_state["object_id"])
            for v in chain_state["versions"]:
                chain.versions.append(
                    Version(
                        valid_from=v["from"],
                        valid_to=_FOREVER if v["to"] is None else v["to"],
                        root_tid=None if v["tid"] is None else TID(*v["tid"]),
                    )
                )
            store._chains[chain.object_id] = chain
        return store
