"""Subtuple-level time versions — the paper's temporal architecture.

Section 5: "Currently we are able to support ASOF queries ...
'Walk-through-time' queries which work on time intervals are supported at
lower system levels (subtuple manager)".  /DLW84, Lu84/ describe the
scheme: versions are kept per *subtuple*, so an update writes one small
version record instead of copying the whole complex object.

Design
------

A temporally-managed complex object keeps, in its root record,

* ``created`` / ``deleted`` timestamps for the object as a whole,
* a **version directory**: entries ``(key, valid_from, valid_to, stored)``
  where ``key`` is the Mini TID of a (data or MD) subtuple — or the ROOT
  sentinel for the root pointer groups — and ``stored`` is the Mini TID of
  a frozen copy of the superseded payload, stored in the object's own
  address space.

Mutations version only the subtuples whose bytes actually change; nothing
is ever physically deleted (structurally removed subtuples simply become
unreachable from newer MD versions), so the Mini Directory *as of T* —
reconstructed by reading each subtuple's payload version valid at T —
reaches exactly the subobjects alive at T.  This reachability argument is
what lets a later-inserted subtuple default its first version's
``valid_from`` to the object's creation time: instants before its real
birth never reach it through the MD anyway.

The space trade-off against object-level copy-on-write
(:mod:`repro.temporal.versions`) is measured in benchmark A8.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.errors import StorageError, TemporalError
from repro.model.schema import TableSchema
from repro.model.values import TupleValue
from repro.storage.address_space import MD_POOL, LocalAddressSpace
from repro.storage.complex_object import ComplexObjectManager, OpenObject, SubtablePath
from repro.storage.minidirectory import StorageStructure, get_codec
from repro.storage.segment import Segment
from repro.storage.subtuple import (
    decode_pointer_groups,
    decode_root_md,
    encode_data_subtuple,
    encode_pointer_groups,
    encode_root_md,
)
from repro.storage.tid import MiniTID, TID
from repro.temporal.versions import Timestamp, canonical_timestamp

#: subtuple kind tag of a temporal root record
KIND_TROOT = 0xE3

_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

#: version-directory key for the root pointer groups
_ROOT_KEY = b"\xff\xff\xff\xff"

_FOREVER = float("inf")


@dataclass(frozen=True)
class VersionEntry:
    key: Optional[MiniTID]  # None = the root pointer groups
    valid_from: float
    valid_to: float
    stored: MiniTID


def _encode_timestamp(value: float) -> bytes:
    return _F64.pack(value)


def encode_temporal_root(
    created: float,
    deleted: float,
    entries: Sequence[VersionEntry],
    page_list: Sequence[Optional[int]],
    page_roles: Sequence[bool],
    groups,
) -> bytes:
    out = bytearray([KIND_TROOT])
    out += _encode_timestamp(created)
    out += _encode_timestamp(deleted)
    out += _U32.pack(len(entries))
    for entry in entries:
        out += _ROOT_KEY if entry.key is None else entry.key.encode()
        out += _encode_timestamp(entry.valid_from)
        out += _encode_timestamp(entry.valid_to)
        out += entry.stored.encode()
    out += encode_root_md(page_list, groups, page_roles)
    return bytes(out)


def decode_temporal_root(payload: bytes):
    if not payload or payload[0] != KIND_TROOT:
        raise StorageError("not a temporal root record")
    created = _F64.unpack_from(payload, 1)[0]
    deleted = _F64.unpack_from(payload, 9)[0]
    count = _U32.unpack_from(payload, 17)[0]
    offset = 21
    entries: list[VersionEntry] = []
    for _ in range(count):
        raw_key = bytes(payload[offset:offset + 4])
        key = None if raw_key == _ROOT_KEY else MiniTID.decode(raw_key)
        valid_from = _F64.unpack_from(payload, offset + 4)[0]
        valid_to = _F64.unpack_from(payload, offset + 12)[0]
        stored = MiniTID.decode(payload, offset + 20)
        entries.append(VersionEntry(key, valid_from, valid_to, stored))
        offset += 24
    page_list, groups, page_roles = decode_root_md(payload[offset:])
    return created, deleted, entries, page_list, page_roles, groups


class _AsOfSpace:
    """A read-only view of an address space at one instant: reads are
    redirected to the version valid at T."""

    def __init__(self, space: LocalAddressSpace, entries: Sequence[VersionEntry], at: float):
        self._space = space
        self._at = at
        self._redirect: dict[MiniTID, MiniTID] = {}
        for entry in entries:
            if entry.key is None:
                continue
            if entry.valid_from <= at < entry.valid_to:
                self._redirect[entry.key] = entry.stored
        self.page_list = space.page_list
        self.page_roles = space.page_roles

    def read(self, mini: MiniTID) -> bytes:
        target = self._redirect.get(mini, mini)
        return self._space.read(target)

    def translate(self, mini: MiniTID) -> TID:
        return self._space.translate(self._redirect.get(mini, mini))

    @property
    def pages(self):
        return self._space.pages

    def insert(self, *args, **kwargs):
        raise TemporalError("historical views are read-only")

    update = insert
    delete = insert


class TemporalObjectManager:
    """Complex-object storage with subtuple-level time versions."""

    def __init__(self, segment: Segment, structure: StorageStructure = StorageStructure.SS3):
        self._segment = segment
        self._codec = get_codec(structure)
        self._base = ComplexObjectManager(segment, structure)

    @property
    def structure(self) -> StorageStructure:
        return self._codec.structure

    @property
    def segment(self) -> Segment:
        return self._segment

    # ------------------------------------------------------------------ store

    def store(self, schema: TableSchema, value: TupleValue, at: Timestamp) -> TID:
        created = canonical_timestamp(at)
        space = LocalAddressSpace(self._segment)
        groups, _decoded = self._codec.store_object(space, schema, value)
        while True:
            payload = encode_temporal_root(
                created, _FOREVER, [], space.page_list, space.page_roles, groups
            )
            needed = len(payload) + 5
            target = next(
                (
                    p
                    for p in space.pages_of(MD_POOL)
                    if self._segment.free_space_on(p) >= needed
                ),
                None,
            )
            if target is None:
                target = self._segment.allocate_page()
                space._local_index(target, MD_POOL)
                continue
            return self._segment.insert_record_on(target, payload, 0)

    # ------------------------------------------------------------------- read

    def _root_state(self, root_tid: TID):
        payload = self._segment.read_record(root_tid)
        return decode_temporal_root(payload)

    def exists_at(self, root_tid: TID, at: Timestamp) -> bool:
        created, deleted, *_rest = self._root_state(root_tid)
        point = canonical_timestamp(at)
        return created <= point < deleted

    def open_current(self, root_tid: TID, schema: TableSchema) -> OpenObject:
        created, deleted, entries, page_list, page_roles, groups = self._root_state(root_tid)
        if deleted != _FOREVER:
            raise TemporalError(f"object {root_tid} was deleted")
        space = LocalAddressSpace(self._segment, page_list, page_roles)
        decoded = self._codec.decode_object(space, schema, groups)
        return OpenObject(self._base, root_tid, schema, space, decoded)

    def open_asof(self, root_tid: TID, schema: TableSchema, at: Timestamp) -> OpenObject:
        """A read-only view of the object as of *at*."""
        point = canonical_timestamp(at)
        created, deleted, entries, page_list, page_roles, groups = self._root_state(root_tid)
        if not created <= point < deleted:
            raise TemporalError(f"object {root_tid} did not exist at {at}")
        space = LocalAddressSpace(self._segment, page_list, page_roles)
        asof_space = _AsOfSpace(space, entries, point)
        groups_at = groups
        for entry in entries:
            if entry.key is None and entry.valid_from <= point < entry.valid_to:
                stored = space.read(entry.stored)
                groups_at, _offset = decode_pointer_groups(stored, 0)
                break
        decoded = self._codec.decode_object(asof_space, schema, groups_at)
        return OpenObject(self._base, root_tid, schema, asof_space, decoded)  # type: ignore[arg-type]

    def load(self, root_tid: TID, schema: TableSchema) -> TupleValue:
        return self.open_current(root_tid, schema).materialize()

    def load_asof(self, root_tid: TID, schema: TableSchema, at: Timestamp) -> TupleValue:
        return self.open_asof(root_tid, schema, at).materialize()

    # -------------------------------------------------------------- mutations

    def update_atoms(
        self,
        root_tid: TID,
        schema: TableSchema,
        path: SubtablePath,
        updates: dict,
        at: Timestamp,
    ) -> None:
        """Version-and-update the atomic values of one (sub)object."""
        point = canonical_timestamp(at)
        created, deleted, entries, page_list, page_roles, groups = self._root_state(root_tid)
        self._check_alive(created, deleted, point, entries)
        space = LocalAddressSpace(self._segment, page_list, page_roles)
        decoded = self._codec.decode_object(space, schema, groups)
        obj = OpenObject(self._base, root_tid, schema, space, decoded)
        element_schema, element = obj.resolve(path)
        old_payload = space.read(element.data)
        current = obj.read_atoms(element_schema, element)
        for name, value in updates.items():
            attr = element_schema.attribute(name)
            if not attr.is_atomic:
                raise TemporalError(f"{name!r} is not an atomic attribute")
            assert attr.atomic_type is not None
            current[name] = attr.atomic_type.validate(value)
        new_payload = encode_data_subtuple(
            element_schema.attributes,
            tuple(current[a.name] for a in element_schema.atomic_attributes),
        )
        if new_payload == old_payload:
            return
        entries = list(entries)
        self._version_subtuple(space, entries, element.data, old_payload, created, point)
        space.update(element.data, new_payload)
        self._write_root(root_tid, created, deleted, entries, space, groups)

    def insert_element(
        self,
        root_tid: TID,
        schema: TableSchema,
        path: SubtablePath,
        subtable_name: str,
        value,
        at: Timestamp,
        position: Optional[int] = None,
    ) -> None:
        self._structural_edit(
            root_tid, schema, at,
            lambda obj: obj.insert_element(path, subtable_name, value, position),
        )

    def delete_element(
        self,
        root_tid: TID,
        schema: TableSchema,
        path: SubtablePath,
        subtable_name: str,
        position: int,
        at: Timestamp,
    ) -> None:
        def edit(obj: OpenObject) -> None:
            _schema, subtable = obj.resolve_subtable(path, subtable_name)
            if not 0 <= position < len(subtable.elements):
                raise TemporalError(
                    f"subtable {subtable_name!r} has no element {position}"
                )
            # Structural removal only: the records stay for history.
            subtable.elements.pop(position)

        self._structural_edit(root_tid, schema, at, edit)

    def delete_object(self, root_tid: TID, schema: TableSchema, at: Timestamp) -> None:
        point = canonical_timestamp(at)
        created, deleted, entries, page_list, page_roles, groups = self._root_state(root_tid)
        self._check_alive(created, deleted, point, entries)
        space = LocalAddressSpace(self._segment, page_list, page_roles)
        self._write_root(root_tid, created, point, list(entries), space, groups)

    # -------------------------------------------------------------- internals

    def _structural_edit(self, root_tid: TID, schema: TableSchema, at: Timestamp, edit) -> None:
        point = canonical_timestamp(at)
        created, deleted, entries, page_list, page_roles, groups = self._root_state(root_tid)
        self._check_alive(created, deleted, point, entries)
        space = LocalAddressSpace(self._segment, page_list, page_roles)
        decoded = self._codec.decode_object(space, schema, groups)
        obj = OpenObject(self._base, root_tid, schema, space, decoded)
        entries = list(entries)

        # Intercept MD-subtuple rewrites so superseded payloads are saved,
        # and suppress physical deletes (history needs the records).
        original_update = space.update
        original_delete = space.delete

        def versioned_update(mini: MiniTID, payload: bytes) -> None:
            old = space.read(mini)
            if old == payload:
                return
            self._version_subtuple(space, entries, mini, old, created, point)
            original_update(mini, payload)

        space.update = versioned_update  # type: ignore[method-assign]
        space.delete = lambda mini: None  # type: ignore[method-assign]
        # The edit must not rewrite the root record itself; capture the
        # refreshed groups instead.
        obj._rewrite_structure = lambda: None  # type: ignore[method-assign]
        try:
            edit(obj)
            new_groups = self._codec.refresh_structure(space, schema, obj.decoded)
        finally:
            space.update = original_update  # type: ignore[method-assign]
            space.delete = original_delete  # type: ignore[method-assign]

        if encode_pointer_groups(new_groups) != encode_pointer_groups(groups):
            # version the old root pointer groups
            stored = space.insert(encode_pointer_groups(groups), pool=MD_POOL)
            entries.append(
                VersionEntry(
                    key=None,
                    valid_from=self._last_change(entries, None, created),
                    valid_to=point,
                    stored=stored,
                )
            )
        self._write_root(root_tid, created, deleted, entries, space, new_groups)

    def _version_subtuple(
        self,
        space: LocalAddressSpace,
        entries: list[VersionEntry],
        key: MiniTID,
        old_payload: bytes,
        created: float,
        point: float,
    ) -> None:
        valid_from = self._last_change(entries, key, created)
        if point < valid_from:
            raise TemporalError("timestamps must not go backwards")
        # frozen versions keep the kind<->pool correspondence: old data
        # subtuples go to data pages, old MD subtuples to MD pages
        from repro.storage.subtuple import KIND_DATA, subtuple_kind

        pool = MD_POOL if subtuple_kind(old_payload) != KIND_DATA else False
        stored = space.insert(old_payload, pool=pool)
        entries.append(VersionEntry(key, valid_from, point, stored))

    @staticmethod
    def _last_change(entries: Sequence[VersionEntry], key: Optional[MiniTID], created: float) -> float:
        latest = created
        for entry in entries:
            if entry.key == key and entry.valid_to > latest:
                latest = entry.valid_to
        return latest

    @staticmethod
    def _check_alive(created: float, deleted: float, point: float, entries) -> None:
        if deleted != _FOREVER:
            raise TemporalError("object was deleted; history is read-only")
        if point < created:
            raise TemporalError("timestamps must not go backwards")

    def _write_root(
        self,
        root_tid: TID,
        created: float,
        deleted: float,
        entries: list[VersionEntry],
        space: LocalAddressSpace,
        groups,
    ) -> None:
        payload = encode_temporal_root(
            created, deleted, entries, space.page_list, space.page_roles, groups
        )
        self._segment.update_record(
            root_tid, payload,
            preferred_pages=space.pages_of(MD_POOL) + space.pages,
        )

    def mutator(self, root_tid: TID, schema: TableSchema, at: Timestamp) -> "TemporalMutator":
        return TemporalMutator(self, root_tid, schema, at)

    # ------------------------------------------------------------ diagnostics

    def version_statistics(self, root_tid: TID) -> dict:
        created, deleted, entries, page_list, _roles, _groups = self._root_state(root_tid)
        return {
            "created": created,
            "deleted": None if deleted == _FOREVER else deleted,
            "version_entries": len(entries),
            "pages": len([p for p in page_list if p is not None]),
        }

    def subtuple_history(
        self, root_tid: TID, key: MiniTID
    ) -> list[tuple[float, float, bytes]]:
        """Walk-through-time at the subtuple level: every stored version of
        one subtuple, oldest first, followed by the current payload."""
        created, deleted, entries, page_list, page_roles, _groups = self._root_state(root_tid)
        space = LocalAddressSpace(self._segment, page_list, page_roles)
        versions = sorted(
            (e for e in entries if e.key == key),
            key=lambda e: e.valid_from,
        )
        out = [
            (e.valid_from, e.valid_to, space.read(e.stored)) for e in versions
        ]
        last = versions[-1].valid_to if versions else created
        end = deleted if deleted != _FOREVER else _FOREVER
        out.append((last, end, space.read(key)))
        return out


class TemporalMutator:
    """The partial-update surface handed to ``Database.update`` callables
    on subtuple-versioned tables — same three operations as
    :class:`~repro.storage.complex_object.OpenObject`, with the timestamp
    bound."""

    def __init__(
        self,
        manager: TemporalObjectManager,
        root_tid: TID,
        schema: TableSchema,
        at: Timestamp,
    ):
        self._manager = manager
        self._root = root_tid
        self._schema = schema
        self._at = at

    def update_atoms(self, path: SubtablePath, updates: dict) -> None:
        self._manager.update_atoms(self._root, self._schema, path, updates, self._at)

    def insert_element(
        self, path: SubtablePath, subtable_name: str, value, position: Optional[int] = None
    ) -> None:
        self._manager.insert_element(
            self._root, self._schema, path, subtable_name, value, self._at, position
        )

    def delete_element(self, path: SubtablePath, subtable_name: str, position: int) -> None:
        self._manager.delete_element(
            self._root, self._schema, path, subtable_name, position, self._at
        )
