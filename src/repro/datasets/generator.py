"""Seeded synthetic workload generators.

The paper's measurements concern *shape* (fan-out, object size, clustering),
so the generators produce data with the same schema as the paper's examples
but parameterized cardinalities.  Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Iterator

from repro.datasets import paper
from repro.model.values import TableValue

FUNCTIONS = ("Leader", "Consultant", "Secretary", "Staff")
EQUIPMENT_TYPES = ("3278", "3279", "3179", "4361", "PC", "PC/XT", "PC/AT", "PC/GA")


@dataclass
class DepartmentsGenerator:
    """Generate DEPARTMENTS-shaped complex objects.

    Parameters mirror the knobs the paper's storage discussion turns on: the
    number of complex objects, the subtable fan-outs (a subtable "may consist
    of thousands of tuples"), and the share of consultants (selectivity of
    the Section 4.2 index queries).
    """

    departments: int = 10
    projects_per_department: int = 3
    members_per_project: int = 4
    equipment_per_department: int = 3
    consultant_share: float = 0.25
    seed: int = 42

    def rows(self) -> list[dict]:
        rng = random.Random(self.seed)
        out: list[dict] = []
        next_empno = 10_000
        for index in range(self.departments):
            dno = 100 + index
            projects = []
            for project_index in range(self.projects_per_department):
                members = []
                for member_index in range(self.members_per_project):
                    if member_index == 0:
                        function = "Leader"
                    elif rng.random() < self.consultant_share:
                        function = "Consultant"
                    else:
                        function = rng.choice(("Secretary", "Staff"))
                    members.append({"EMPNO": next_empno, "FUNCTION": function})
                    next_empno += 1
                projects.append(
                    {
                        "PNO": 10 + project_index,
                        "PNAME": f"P{dno}-{project_index}",
                        "MEMBERS": members,
                    }
                )
            equipment = [
                {"QU": rng.randint(1, 5), "TYPE": rng.choice(EQUIPMENT_TYPES)}
                for _ in range(self.equipment_per_department)
            ]
            out.append(
                {
                    "DNO": dno,
                    "MGRNO": 50_000 + index,
                    "PROJECTS": projects,
                    "BUDGET": rng.randrange(100_000, 900_000, 10_000),
                    "EQUIP": equipment,
                }
            )
        return out

    def table(self) -> TableValue:
        return TableValue.from_plain(paper.DEPARTMENTS_SCHEMA, self.rows())

    # -- flat decomposition (for the baselines) -----------------------------

    def flat_rows(self) -> dict[str, list[tuple]]:
        """The 1NF decomposition (Tables 1-4 shape) of the generated data."""
        departments: list[tuple] = []
        projects: list[tuple] = []
        members: list[tuple] = []
        equipment: list[tuple] = []
        for dept in self.rows():
            departments.append((dept["DNO"], dept["MGRNO"], dept["BUDGET"]))
            for project in dept["PROJECTS"]:
                projects.append((project["PNO"], project["PNAME"], dept["DNO"]))
                for member in project["MEMBERS"]:
                    members.append(
                        (member["EMPNO"], project["PNO"], dept["DNO"], member["FUNCTION"])
                    )
            for item in dept["EQUIP"]:
                equipment.append((item["QU"], item["TYPE"], dept["DNO"]))
        return {
            "DEPARTMENTS-1NF": departments,
            "PROJECTS-1NF": projects,
            "MEMBERS-1NF": members,
            "EQUIP-1NF": equipment,
        }

    def employees_rows(self) -> list[tuple]:
        """An EMPLOYEES-1NF covering every generated member and manager."""
        rng = random.Random(self.seed + 1)
        rows = []
        for dept in self.rows():
            rows.append(self._employee(rng, dept["MGRNO"]))
            for project in dept["PROJECTS"]:
                for member in project["MEMBERS"]:
                    rows.append(self._employee(rng, member["EMPNO"]))
        return rows

    @staticmethod
    def _employee(rng: random.Random, empno: int) -> tuple:
        lname = "".join(rng.choice(string.ascii_uppercase) for _ in range(6))
        fname = "".join(rng.choice(string.ascii_uppercase) for _ in range(4))
        sex = rng.choice(("male", "female"))
        return (empno, lname.title(), fname.title(), sex)


_WORD_POOL = (
    "database systems design concurrency recovery optimization text "
    "hierarchies relations storage index search computer computational "
    "minicomputer microcomputer office automation engineering graphics "
    "network protocol transaction locking version temporal query language "
    "compiler robotics schema integration performance clustering"
).split()

_AUTHOR_POOL = (
    "Jones Smith Meyer Pool Abraham Tesla Dadam Pistor Lum Walch "
    "Blanken Erbe Andersen Kuespert Schek Lorie Haskin"
).split()


@dataclass
class ReportsGenerator:
    """Generate REPORTS-shaped objects for text-index and list benchmarks."""

    reports: int = 50
    max_authors: int = 4
    title_words: int = 6
    max_descriptors: int = 3
    seed: int = 7

    def rows(self) -> list[dict]:
        rng = random.Random(self.seed)
        out = []
        for index in range(self.reports):
            author_count = rng.randint(1, self.max_authors)
            authors = [
                {"NAME": f"{rng.choice(_AUTHOR_POOL)} {rng.choice(string.ascii_uppercase)}"}
                for _ in range(author_count)
            ]
            title = " ".join(
                rng.choice(_WORD_POOL) for _ in range(self.title_words)
            ).title()
            descriptors = [
                {"KEYWORD": rng.choice(_WORD_POOL), "WEIGHT": round(rng.random(), 2)}
                for _ in range(rng.randint(1, self.max_descriptors))
            ]
            out.append(
                {
                    "REPNO": f"{index:04d}",
                    "AUTHORS": authors,
                    "TITLE": title,
                    "DESCRIPTORS": descriptors,
                }
            )
        return out

    def table(self) -> TableValue:
        return TableValue.from_plain(paper.REPORTS_SCHEMA, self.rows())
