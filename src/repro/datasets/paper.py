"""The paper's example tables (Tables 1-8), verbatim.

The published scan is 180-degree-rotated OCR; all numeric values, structure,
and the values the running text depends on (department numbers, manager
numbers, budgets, project numbers/names, employee numbers, functions, and
the equipment of department 314) decode unambiguously and are reproduced
exactly.  A handful of name strings in Tables 6 and 8 are typographically
unrecoverable; they are replaced by fixed plausible constants, documented in
EXPERIMENTS.md.  Every fact the paper *states* about this data holds here:

* the data subtuples quoted in Section 4.1 ('314 56194 320,000', '17 CGA',
  '39582 Leader', '2 3278');
* exactly three consultants: 56019 (dept 314), 89921 and 44512 (dept 218);
* the consultant-department query yields DNOs {314, 218};
* the consultant-project query yields PNOs {17, 25};
* Example 6 ("only consultants") yields the empty table;
* report 0179 has 'Jones A' as its first (and only) author;
* EMPLOYEES-1NF has one tuple per project member and per manager of Table 5.
"""

from __future__ import annotations

from repro.model.schema import TableSchema, atomic, list_of, nested, table
from repro.model.values import TableValue

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------

MEMBERS_SCHEMA = table(
    "MEMBERS",
    atomic("EMPNO", "INT"),
    atomic("FUNCTION", "STRING"),
)

PROJECTS_SCHEMA = table(
    "PROJECTS",
    atomic("PNO", "INT"),
    atomic("PNAME", "STRING"),
    nested("MEMBERS", MEMBERS_SCHEMA),
)

EQUIP_SCHEMA = table(
    "EQUIP",
    atomic("QU", "INT"),
    atomic("TYPE", "STRING"),
)

#: Table 5 — the NF2 DEPARTMENTS table.
DEPARTMENTS_SCHEMA = table(
    "DEPARTMENTS",
    atomic("DNO", "INT"),
    atomic("MGRNO", "INT"),
    nested("PROJECTS", PROJECTS_SCHEMA),
    atomic("BUDGET", "INT"),
    nested("EQUIP", EQUIP_SCHEMA),
)

#: Table 6 — REPORTS, with an ordered AUTHORS subtable (a list).
REPORTS_SCHEMA = table(
    "REPORTS",
    atomic("REPNO", "STRING"),
    nested("AUTHORS", list_of("AUTHORS", atomic("NAME", "STRING"))),
    atomic("TITLE", "STRING"),
    nested(
        "DESCRIPTORS",
        table("DESCRIPTORS", atomic("KEYWORD", "STRING"), atomic("WEIGHT", "FLOAT")),
    ),
)

#: Tables 1-4 — the flat (1NF) decomposition of DEPARTMENTS.
DEPARTMENTS_1NF_SCHEMA = table(
    "DEPARTMENTS-1NF",
    atomic("DNO", "INT"),
    atomic("MGRNO", "INT"),
    atomic("BUDGET", "INT"),
)

PROJECTS_1NF_SCHEMA = table(
    "PROJECTS-1NF",
    atomic("PNO", "INT"),
    atomic("PNAME", "STRING"),
    atomic("DNO", "INT"),
)

MEMBERS_1NF_SCHEMA = table(
    "MEMBERS-1NF",
    atomic("EMPNO", "INT"),
    atomic("PNO", "INT"),
    atomic("DNO", "INT"),
    atomic("FUNCTION", "STRING"),
)

EQUIP_1NF_SCHEMA = table(
    "EQUIP-1NF",
    atomic("QU", "INT"),
    atomic("TYPE", "STRING"),
    atomic("DNO", "INT"),
)

#: Table 8 — EMPLOYEES-1NF.
EMPLOYEES_1NF_SCHEMA = table(
    "EMPLOYEES-1NF",
    atomic("EMPNO", "INT"),
    atomic("LNAME", "STRING"),
    atomic("FNAME", "STRING"),
    atomic("SEX", "STRING"),
)

# ---------------------------------------------------------------------------
# Data
# ---------------------------------------------------------------------------

#: Rows of Table 5 (DEPARTMENTS), in plain form.
DEPARTMENTS_ROWS = [
    {
        "DNO": 314,
        "MGRNO": 56194,
        "BUDGET": 320_000,
        "PROJECTS": [
            {
                "PNO": 17,
                "PNAME": "CGA",
                "MEMBERS": [
                    {"EMPNO": 39582, "FUNCTION": "Leader"},
                    {"EMPNO": 56019, "FUNCTION": "Consultant"},
                    {"EMPNO": 69011, "FUNCTION": "Secretary"},
                ],
            },
            {
                "PNO": 23,
                "PNAME": "HEAR",
                "MEMBERS": [
                    {"EMPNO": 58912, "FUNCTION": "Staff"},
                    {"EMPNO": 90011, "FUNCTION": "Leader"},
                    {"EMPNO": 78218, "FUNCTION": "Secretary"},
                    {"EMPNO": 98902, "FUNCTION": "Staff"},
                ],
            },
        ],
        "EQUIP": [
            {"QU": 2, "TYPE": "3278"},
            {"QU": 3, "TYPE": "PC/AT"},
            {"QU": 1, "TYPE": "PC"},
        ],
    },
    {
        "DNO": 218,
        "MGRNO": 71349,
        "BUDGET": 440_000,
        "PROJECTS": [
            {
                "PNO": 25,
                "PNAME": "TEXT",
                "MEMBERS": [
                    {"EMPNO": 92100, "FUNCTION": "Leader"},
                    {"EMPNO": 89921, "FUNCTION": "Consultant"},
                    {"EMPNO": 99023, "FUNCTION": "Secretary"},
                    {"EMPNO": 44512, "FUNCTION": "Consultant"},
                    {"EMPNO": 89211, "FUNCTION": "Staff"},
                    {"EMPNO": 72723, "FUNCTION": "Staff"},
                ],
            },
        ],
        "EQUIP": [
            {"QU": 2, "TYPE": "3278"},
            {"QU": 1, "TYPE": "PC/AT"},
            {"QU": 1, "TYPE": "3179"},
            {"QU": 1, "TYPE": "PC/GA"},
        ],
    },
    {
        "DNO": 417,
        "MGRNO": 91093,
        "BUDGET": 360_000,
        "PROJECTS": [
            {
                "PNO": 37,
                "PNAME": "NEBS",
                "MEMBERS": [
                    {"EMPNO": 87710, "FUNCTION": "Secretary"},
                    {"EMPNO": 81193, "FUNCTION": "Leader"},
                    {"EMPNO": 75913, "FUNCTION": "Staff"},
                    {"EMPNO": 96001, "FUNCTION": "Staff"},
                ],
            },
        ],
        "EQUIP": [
            {"QU": 1, "TYPE": "4361"},
            {"QU": 1, "TYPE": "PC/XT"},
            {"QU": 1, "TYPE": "PC/AT"},
            {"QU": 2, "TYPE": "3278"},
            {"QU": 1, "TYPE": "3279"},
            {"QU": 1, "TYPE": "3179"},
            {"QU": 1, "TYPE": "PC/GA"},
        ],
    },
]

#: Rows of Table 6 (REPORTS).  Author/keyword strings normalized from the
#: damaged scan; report 0179's first author is 'Jones A' (Example 8) and
#: 0291 is co-authored by Jones (Section 5's text query).
REPORTS_ROWS = [
    {
        "REPNO": "0179",
        "AUTHORS": [{"NAME": "Jones A"}],
        "TITLE": "Concurrency and Consistency Control",
        "DESCRIPTORS": [
            {"KEYWORD": "Concurrency Control", "WEIGHT": 0.6},
            {"KEYWORD": "Recovery", "WEIGHT": 0.3},
            {"KEYWORD": "Distribution", "WEIGHT": 0.1},
        ],
    },
    {
        "REPNO": "0189",
        "AUTHORS": [{"NAME": "Tesla H"}, {"NAME": "Abraham G"}],
        "TITLE": "Text Editing and String Search",
        "DESCRIPTORS": [
            {"KEYWORD": "String Search", "WEIGHT": 0.7},
            {"KEYWORD": "Formatting", "WEIGHT": 0.3},
        ],
    },
    {
        "REPNO": "0291",
        "AUTHORS": [{"NAME": "Pool A"}, {"NAME": "Meyer P"}, {"NAME": "Jones A"}],
        "TITLE": "Branch and Bound Math Optimization",
        "DESCRIPTORS": [
            {"KEYWORD": "Branch and Bound", "WEIGHT": 0.6},
            {"KEYWORD": "Garbage Collection", "WEIGHT": 0.4},
        ],
    },
]

#: Table 8's employee directory.  The paper states EMPLOYEES-1NF "shall
#: contain one tuple for each project member and manager stored in Table 5";
#: name strings beyond the decodable ones are fixed constants.
EMPLOYEES_1NF_ROWS = [
    (39582, "Krueger", "Klaus", "male"),
    (56019, "Mayer", "Kay", "male"),
    (69011, "Andre", "Ina", "female"),
    (58912, "Walter", "Jan", "male"),
    (90011, "Hoffmann", "Eva", "female"),
    (78218, "Brandt", "Rita", "female"),
    (98902, "Fischer", "Udo", "male"),
    (92100, "Keller", "Max", "male"),
    (89921, "Lorenz", "Anna", "female"),
    (99023, "Vogel", "Mia", "female"),
    (44512, "Berger", "Tom", "male"),
    (89211, "Winter", "Nils", "male"),
    (72723, "Sommer", "Lena", "female"),
    (87710, "Wagner", "Else", "female"),
    (81193, "Schulz", "Bernd", "male"),
    (75913, "Peters", "Olaf", "male"),
    (96001, "Baursen", "Hope", "female"),
    # managers
    (56194, "Schmidt", "Horst", "male"),
    (71349, "Neumann", "Karl", "male"),
    (91093, "Richter", "Grit", "female"),
]


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def departments() -> TableValue:
    """Table 5 as a TableValue."""
    return TableValue.from_plain(DEPARTMENTS_SCHEMA, DEPARTMENTS_ROWS)


def reports() -> TableValue:
    """Table 6 as a TableValue."""
    return TableValue.from_plain(REPORTS_SCHEMA, REPORTS_ROWS)


def departments_1nf() -> TableValue:
    """Table 1, derived from Table 5 (the paper presents both views of the
    same data)."""
    rows = [
        (d["DNO"], d["MGRNO"], d["BUDGET"]) for d in DEPARTMENTS_ROWS
    ]
    return TableValue.from_plain(DEPARTMENTS_1NF_SCHEMA, rows)


def projects_1nf() -> TableValue:
    """Table 2."""
    rows = []
    for dept in DEPARTMENTS_ROWS:
        for project in dept["PROJECTS"]:
            rows.append((project["PNO"], project["PNAME"], dept["DNO"]))
    return TableValue.from_plain(PROJECTS_1NF_SCHEMA, rows)


def members_1nf() -> TableValue:
    """Table 3."""
    rows = []
    for dept in DEPARTMENTS_ROWS:
        for project in dept["PROJECTS"]:
            for member in project["MEMBERS"]:
                rows.append(
                    (member["EMPNO"], project["PNO"], dept["DNO"], member["FUNCTION"])
                )
    return TableValue.from_plain(MEMBERS_1NF_SCHEMA, rows)


def equip_1nf() -> TableValue:
    """Table 4."""
    rows = []
    for dept in DEPARTMENTS_ROWS:
        for item in dept["EQUIP"]:
            rows.append((item["QU"], item["TYPE"], dept["DNO"]))
    return TableValue.from_plain(EQUIP_1NF_SCHEMA, rows)


def employees_1nf() -> TableValue:
    """Table 8."""
    return TableValue.from_plain(EMPLOYEES_1NF_SCHEMA, EMPLOYEES_1NF_ROWS)


def department_314() -> dict:
    """The complex object the paper uses in every storage figure."""
    return DEPARTMENTS_ROWS[0]
