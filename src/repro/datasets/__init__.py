"""Datasets: the paper's example tables and synthetic workload generators."""

from repro.datasets import paper
from repro.datasets.generator import DepartmentsGenerator, ReportsGenerator

__all__ = ["paper", "DepartmentsGenerator", "ReportsGenerator"]
