"""System-generated keys: tuple names (t-names)."""

from repro.names.tuple_names import TupleName, TupleNameKind, TupleNameService

__all__ = ["TupleName", "TupleNameKind", "TupleNameService"]
