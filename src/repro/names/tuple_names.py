"""Tuple names (Section 4.3): system-generated keys as hierarchical
addresses.

T-names exist for

* whole complex objects — the root MD subtuple's TID (``U`` in Fig 8);
* complex subobjects — the path to the data subtuple holding their
  first-level atomic values (``V``);
* flat subobjects — exactly like an index address (``T``);
* **subtables** — the path to the subtable's *MD subtuple* (``W``, ``X``).
  This is the one place addresses may reference MD subtuples, which is why
  subtable t-names "are not allowed as i-addresses" (the paper's closing
  remark of Section 4.3).

Because subtable t-names address MD subtuples, they exist only under
layouts that give subtables their own MD subtuples (SS1 and SS3 — another
argument for AIM-II's choice of SS3); under SS2 requesting one raises
:class:`~repro.errors.TupleNameError`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import TupleNameError
from repro.model.schema import TableSchema
from repro.model.values import TableValue, TupleValue
from repro.storage.complex_object import ComplexObjectManager, OpenObject, SubtablePath
from repro.storage.minidirectory import DecodedElement, DecodedSubtable
from repro.storage.tid import MiniTID, TID


class TupleNameKind(enum.Enum):
    OBJECT = "object"
    SUBOBJECT = "subobject"
    SUBTABLE = "subtable"


@dataclass(frozen=True)
class TupleName:
    """A hierarchical address usable as a persistent system key."""

    kind: TupleNameKind
    root: TID
    components: tuple[MiniTID, ...] = ()

    def encode(self) -> str:
        """A printable form applications can store and pass back."""
        parts = [f"{self.kind.value}", f"{self.root.page}:{self.root.slot}"]
        parts += [f"{m.local_page}:{m.slot}" for m in self.components]
        return "@" + "/".join(parts)

    @classmethod
    def decode(cls, text: str) -> "TupleName":
        match = re.fullmatch(r"@(\w+)((?:/\d+:\d+)+)", text)
        if not match:
            raise TupleNameError(f"malformed tuple name {text!r}")
        try:
            kind = TupleNameKind(match.group(1))
        except ValueError:
            raise TupleNameError(f"unknown tuple-name kind in {text!r}") from None
        pairs = [
            tuple(int(x) for x in chunk.split(":"))
            for chunk in match.group(2).strip("/").split("/")
        ]
        root = TID(*pairs[0])
        components = tuple(MiniTID(*p) for p in pairs[1:])
        return cls(kind=kind, root=root, components=components)

    def __str__(self) -> str:
        return self.encode()


class TupleNameService:
    """Creates and resolves t-names against one NF2 table's objects."""

    def __init__(self, manager: ComplexObjectManager, schema: TableSchema):
        self._manager = manager
        self._schema = schema

    # -- creating names ----------------------------------------------------------

    def name_of_object(self, root_tid: TID) -> TupleName:
        return TupleName(kind=TupleNameKind.OBJECT, root=root_tid)

    def name_of_subobject(self, obj: OpenObject, path: SubtablePath) -> TupleName:
        """The t-name of the (sub)object reached by *path* — the data
        subtuples along the way are the components (Fig 8's V and T)."""
        if not path:
            return self.name_of_object(obj.root_tid)
        components: list[MiniTID] = []
        schema = obj.schema
        element = obj.decoded
        for name, position in path:
            index = OpenObject._subtable_index(schema, name)
            attr = schema.table_attributes[index]
            assert attr.table is not None
            schema = attr.table
            element = element.subtables[index].elements[position]
            components.append(element.data)
        return TupleName(
            kind=TupleNameKind.SUBOBJECT,
            root=obj.root_tid,
            components=tuple(components),
        )

    def name_of_subtable(
        self, obj: OpenObject, path: SubtablePath, subtable_name: str
    ) -> TupleName:
        """The t-name of a subtable instance — ends at its MD subtuple
        (Fig 8's W and X); unavailable under SS2."""
        components: list[MiniTID] = []
        schema = obj.schema
        element = obj.decoded
        for name, position in path:
            index = OpenObject._subtable_index(schema, name)
            attr = schema.table_attributes[index]
            assert attr.table is not None
            schema = attr.table
            element = element.subtables[index].elements[position]
            components.append(element.data)
        index = OpenObject._subtable_index(schema, subtable_name)
        subtable = element.subtables[index]
        if subtable.md is None:
            raise TupleNameError(
                f"storage structure {self._manager.structure.value} has no "
                "MD subtuples for subtables; subtable t-names need SS1 or SS3"
            )
        components.append(subtable.md)
        return TupleName(
            kind=TupleNameKind.SUBTABLE,
            root=obj.root_tid,
            components=tuple(components),
        )

    # -- resolving names ----------------------------------------------------------------

    def resolve(self, name: TupleName) -> Union[TupleValue, TableValue]:
        """Dereference a t-name to the current value it identifies."""
        obj = self._manager.open(name.root, self._schema)
        if name.kind is TupleNameKind.OBJECT:
            return obj.materialize()
        if name.kind is TupleNameKind.SUBOBJECT:
            schema, element = self._locate_element(obj, name.components)
            return obj.materialize_element(schema, element)
        # SUBTABLE: all but the last component identify subobjects; the last
        # is the subtable's MD subtuple.
        schema, element = self._locate_element(obj, name.components[:-1])
        target = name.components[-1]
        for attr, subtable in zip(schema.table_attributes, element.subtables):
            if subtable.md == target:
                assert attr.table is not None
                out = TableValue(attr.table)
                out.rows.extend(
                    obj.materialize_element(attr.table, child)
                    for child in subtable.elements
                )
                return out
        raise TupleNameError(f"dangling subtable t-name {name}")

    def _locate_element(
        self, obj: OpenObject, components: tuple[MiniTID, ...]
    ) -> tuple[TableSchema, DecodedElement]:
        """Follow data-subtuple components down the decoded tree."""
        schema = obj.schema
        element = obj.decoded
        for component in components:
            found: Optional[tuple[TableSchema, DecodedElement]] = None
            for attr, subtable in zip(schema.table_attributes, element.subtables):
                assert attr.table is not None
                for child in subtable.elements:
                    if child.data == component:
                        found = (attr.table, child)
                        break
                if found:
                    break
            if found is None:
                raise TupleNameError(
                    f"dangling tuple name: no subobject with data subtuple "
                    f"{component}"
                )
            schema, element = found
        return schema, element
