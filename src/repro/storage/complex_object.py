"""Complex-object storage: store / load / navigate / update / delete.

A stored complex object is:

* one **root MD subtuple** — a segment-level record (stable TID; this is
  what indexes and tuple names reference) holding the page list (local
  address space) and the root pointer groups;
* **data subtuples** and **inner MD subtuples** — Mini-TID-addressed records
  clustered on the object's own pages.

Partial access never touches more than it needs: navigation reads only MD
subtuples, attribute updates rewrite only one data subtuple, and structural
edits rewrite only MD subtuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.errors import RecordNotFoundError, StorageError
from repro.model.schema import TableSchema
from repro.obs import METRICS
from repro.model.values import TableValue, TupleValue
from repro.storage.address_space import LocalAddressSpace
from repro.storage.minidirectory import (
    DecodedElement,
    DecodedSubtable,
    MiniDirectoryCodec,
    StorageStructure,
    get_codec,
)
from repro.storage.segment import Segment
from repro.storage.subtuple import (
    decode_data_subtuple,
    decode_root_md,
    encode_data_subtuple,
    encode_root_md,
    subtuple_kind,
    KIND_ROOT,
)
from repro.storage.tid import TID, MiniTID

#: A path into a complex object: (subtable name, element position) pairs.
SubtablePath = Sequence[tuple[str, int]]


@dataclass
class ObjectBundle:
    """A checked-out complex object: verbatim page images plus the bits of
    the root record that must be rebuilt on import.  Serializable via
    :meth:`to_bytes` / :meth:`from_bytes` for shipping to a workstation.
    """

    page_images: list[Optional[bytes]]
    page_roles: list[bool]
    root_local_page: Optional[int]
    root_slot: int
    groups_blob: bytes

    _MAGIC = b"NF2B"

    def to_bytes(self) -> bytes:
        import struct

        out = bytearray(self._MAGIC)
        out += struct.pack(
            ">HHH",
            len(self.page_images),
            0xFFFF if self.root_local_page is None else self.root_local_page,
            self.root_slot,
        )
        for image, role in zip(self.page_images, self.page_roles):
            if image is None:
                out += b"\x00"
            else:
                out += b"\x02" if role else b"\x01"
                out += image
        out += struct.pack(">I", len(self.groups_blob))
        out += self.groups_blob
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ObjectBundle":
        import struct

        from repro.storage.constants import PAGE_SIZE

        if data[:4] != cls._MAGIC:
            raise StorageError("not an NF2 object bundle")
        count, root_local, root_slot = struct.unpack_from(">HHH", data, 4)
        offset = 10
        images: list[Optional[bytes]] = []
        roles: list[bool] = []
        for _ in range(count):
            marker = data[offset]
            offset += 1
            if marker == 0:
                images.append(None)
                roles.append(False)
            else:
                images.append(bytes(data[offset:offset + PAGE_SIZE]))
                roles.append(marker == 2)
                offset += PAGE_SIZE
        (blob_length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        blob = bytes(data[offset:offset + blob_length])
        return cls(
            page_images=images,
            page_roles=roles,
            root_local_page=None if root_local == 0xFFFF else root_local,
            root_slot=root_slot,
            groups_blob=blob,
        )


class ComplexObjectManager:
    """Manages the complex objects of one NF2 table."""

    def __init__(self, segment: Segment, structure: StorageStructure = StorageStructure.SS3):
        self._segment = segment
        self._codec: MiniDirectoryCodec = get_codec(structure)

    @property
    def structure(self) -> StorageStructure:
        return self._codec.structure

    @property
    def segment(self) -> Segment:
        return self._segment

    # ------------------------------------------------------------------ store

    def store(self, schema: TableSchema, value: TupleValue) -> TID:
        """Store one complex object; returns the TID of its root MD
        subtuple."""
        space = LocalAddressSpace(self._segment)
        groups, _decoded = self._codec.store_object(space, schema, value)
        # The root MD subtuple itself goes onto one of the object's MD
        # pages; if it needs a fresh page, that page joins the page list
        # (which is part of the root payload, hence the small fixpoint
        # loop).
        from repro.storage.address_space import MD_POOL

        while True:
            payload = encode_root_md(space.page_list, groups, space.page_roles)
            needed = len(payload) + 5
            target = next(
                (
                    p
                    for p in space.pages_of(MD_POOL)
                    if self._segment.free_space_on(p) >= needed
                ),
                None,
            )
            if target is None:
                target = self._segment.allocate_page()
                space._local_index(target, MD_POOL)
                continue
            return self._segment.insert_record_on(target, payload, 0)

    # ------------------------------------------------------------------- read

    def open(self, root_tid: TID, schema: TableSchema) -> "OpenObject":
        """Decode the object's structure (MD subtuples only — no data
        pages are touched)."""
        if METRICS.enabled:
            METRICS.inc("storage.objects_opened")
        payload = self._segment.read_record(root_tid)
        if subtuple_kind(payload) != KIND_ROOT:
            raise StorageError(f"{root_tid} is not a root MD subtuple")
        page_list, groups, page_roles = decode_root_md(payload)
        space = LocalAddressSpace(self._segment, page_list, page_roles)
        decoded = self._codec.decode_object(space, schema, groups)
        return OpenObject(self, root_tid, schema, space, decoded)

    def load(self, root_tid: TID, schema: TableSchema) -> TupleValue:
        """Materialize the whole complex object."""
        return self.open(root_tid, schema).materialize()

    def load_lazy(self, root_tid: TID, schema: TableSchema) -> TupleValue:
        """Open the object and wrap it as a tuple that decodes data
        subtuples on first access (root atomics as one read, each
        first-level subtable on demand) — see ``storage/lazy.py``."""
        from repro.storage.lazy import LazyTupleValue

        if METRICS.enabled:
            METRICS.inc("exec.lazy_rows")
        return LazyTupleValue(self.open(root_tid, schema))

    # ----------------------------------------------------------------- delete

    def delete(self, root_tid: TID, schema: TableSchema) -> None:
        """Delete a whole complex object and release its pages."""
        obj = self.open(root_tid, schema)
        _delete_subtree(obj.space, obj.decoded)
        self._segment.delete_record(root_tid)
        for page_no in list(obj.space.pages):
            live = _live_records(self._segment, page_no)
            if live == 0 and self._segment.owns(page_no):
                self._segment.free_page(page_no)

    # ------------------------------------------------------------- relocation

    def copy_object(self, root_tid: TID, schema: TableSchema) -> TID:
        """Relocate (check out) an object at the *page level*.

        Pages are copied verbatim and only the page list in the new root MD
        subtuple differs — no D or C pointer is touched, exactly the
        advantage Section 4.1 claims for Mini TIDs.
        """
        payload = self._segment.read_record(root_tid)
        page_list, groups, page_roles = decode_root_md(payload)
        buffer = self._segment.buffer
        new_page_list: list[Optional[int]] = []
        root_home: Optional[tuple[int, int]] = None
        for index, page_no in enumerate(page_list):
            if page_no is None:
                new_page_list.append(None)
                continue
            new_page = self._segment.allocate_page()
            source = buffer.fetch(page_no)
            try:
                data = bytes(source.buffer)
            finally:
                buffer.unpin(page_no)
            destination = buffer.fetch(new_page)
            try:
                destination.buffer[:] = data
            finally:
                buffer.unpin(new_page, dirty=True)
            self._segment._free_map[new_page] = self._segment.free_space_on(page_no)
            if page_no == root_tid.page:
                root_home = (index, new_page)
            new_page_list.append(new_page)
        # Remove the stale copy of the old root record from the copied page,
        # then store the new root (same groups, new page list).
        if root_home is not None:
            _, new_root_page = root_home
            page = buffer.fetch(new_root_page)
            try:
                page.delete(root_tid.slot)
                self._segment._free_map[new_root_page] = page.free_space
            finally:
                buffer.unpin(new_root_page, dirty=True)
        new_payload = encode_root_md(new_page_list, groups, page_roles)
        live_pages = [
            p
            for p, role in zip(new_page_list, page_roles)
            if p is not None and role
        ] + [p for p in new_page_list if p is not None]
        return self._segment.insert_record(new_payload, preferred_pages=live_pages)

    # -------------------------------------------------------- check-out / in

    def export_object(self, root_tid: TID) -> "ObjectBundle":
        """Check out a complex object as a self-contained page bundle.

        Pages are exported byte-for-byte: because every D/C pointer is a
        *local* Mini TID, the bundle is position-independent — exactly the
        paper's "sent to a workstation" scenario.  Only the page list must
        be rebuilt on import.
        """
        payload = self._segment.read_record(root_tid)
        page_list, groups, page_roles = decode_root_md(payload)
        buffer = self._segment.buffer
        images: list[Optional[bytes]] = []
        root_local: Optional[int] = None
        for index, page_no in enumerate(page_list):
            if page_no is None:
                images.append(None)
                continue
            page = buffer.fetch(page_no)
            try:
                images.append(bytes(page.buffer))
            finally:
                buffer.unpin(page_no)
            if page_no == root_tid.page:
                root_local = index
        from repro.storage.subtuple import encode_pointer_groups

        return ObjectBundle(
            page_images=images,
            page_roles=list(page_roles),
            root_local_page=root_local,
            root_slot=root_tid.slot,
            groups_blob=encode_pointer_groups(groups),
        )

    def import_object(self, bundle: "ObjectBundle") -> TID:
        """Check a bundle in (into this manager's segment); returns the new
        root TID.  No subtuple pointer is rewritten."""
        from repro.storage.subtuple import decode_pointer_groups

        buffer = self._segment.buffer
        new_page_list: list[Optional[int]] = []
        for image in bundle.page_images:
            if image is None:
                new_page_list.append(None)
                continue
            page_no = self._segment.allocate_page()
            page = buffer.fetch(page_no)
            try:
                page.buffer[:] = image
                free = page.free_space
            finally:
                buffer.unpin(page_no, dirty=True)
            self._segment._free_map[page_no] = free
            new_page_list.append(page_no)
        # drop the stale copy of the source root record
        if bundle.root_local_page is not None:
            home = new_page_list[bundle.root_local_page]
            assert home is not None
            page = buffer.fetch(home)
            try:
                page.delete(bundle.root_slot)
                self._segment._free_map[home] = page.free_space
            finally:
                buffer.unpin(home, dirty=True)
        groups, _offset = decode_pointer_groups(bundle.groups_blob, 0)
        payload = encode_root_md(new_page_list, groups, bundle.page_roles)
        live = [p for p in new_page_list if p is not None]
        return self._segment.insert_record(payload, preferred_pages=live)

    # ---------------------------------------------------------------- metrics

    def object_pages(self, root_tid: TID) -> list[int]:
        payload = self._segment.read_record(root_tid)
        page_list, _groups, _roles = decode_root_md(payload)
        return [p for p in page_list if p is not None]

    def statistics(self, root_tid: TID, schema: TableSchema) -> dict:
        """Size accounting for the storage-structure benchmarks."""
        payload = self._segment.read_record(root_tid)
        obj = self.open(root_tid, schema)
        md_count = self._codec.md_subtuple_count(obj.decoded)
        md_bytes = len(payload)
        data_count = 0
        data_bytes = 0

        def visit(element: DecodedElement) -> None:
            nonlocal md_bytes, data_count, data_bytes
            data_count += 1
            data_bytes += len(obj.space.read(element.data))
            if element.md is not None:
                md_bytes += len(obj.space.read(element.md))
            for subtable in element.subtables:
                if subtable.md is not None:
                    md_bytes += len(obj.space.read(subtable.md))
                for child in subtable.elements:
                    visit(child)

        visit(obj.decoded)
        return {
            "structure": self.structure.value,
            "md_subtuples": md_count,
            "md_bytes": md_bytes,
            "data_subtuples": data_count,
            "data_bytes": data_bytes,
            "pages": len(obj.space.pages),
        }


class OpenObject:
    """A decoded complex object: navigation and partial operations.

    Navigation methods read *only* MD subtuples; data subtuples are read
    on demand (:meth:`read_atoms`) — the structure/data separation of
    Section 4.1.
    """

    def __init__(
        self,
        manager: ComplexObjectManager,
        root_tid: TID,
        schema: TableSchema,
        space: LocalAddressSpace,
        decoded: DecodedElement,
    ):
        self._manager = manager
        self.root_tid = root_tid
        self.schema = schema
        self.space = space
        self.decoded = decoded

    # -- navigation ---------------------------------------------------------

    def resolve(self, path: SubtablePath) -> tuple[TableSchema, DecodedElement]:
        """Follow (subtable, position) pairs down to an element."""
        schema = self.schema
        element = self.decoded
        for name, position in path:
            index = self._subtable_index(schema, name)
            subtable = element.subtables[index]
            if not 0 <= position < len(subtable.elements):
                raise RecordNotFoundError(
                    f"subtable {name!r} has no element at position {position}"
                )
            attr = schema.table_attributes[index]
            assert attr.table is not None
            schema = attr.table
            element = subtable.elements[position]
        return schema, element

    def resolve_subtable(
        self, path: SubtablePath, name: str
    ) -> tuple[TableSchema, DecodedSubtable]:
        schema, element = self.resolve(path)
        index = self._subtable_index(schema, name)
        attr = schema.table_attributes[index]
        assert attr.table is not None
        return attr.table, element.subtables[index]

    @staticmethod
    def _subtable_index(schema: TableSchema, name: str) -> int:
        for index, attr in enumerate(schema.table_attributes):
            if attr.name == name:
                return index
        raise StorageError(f"{schema.name!r} has no subtable {name!r}")

    # -- data access -----------------------------------------------------------

    def read_atoms(self, schema: TableSchema, element: DecodedElement) -> dict:
        """Read one data subtuple: the element's first-level atomic
        values."""
        if METRICS.enabled:
            METRICS.inc("storage.data_subtuple_decodes")
        payload = self.space.read(element.data)
        values = decode_data_subtuple(schema.attributes, payload)
        return {
            attr.name: value
            for attr, value in zip(schema.atomic_attributes, values)
        }

    def materialize_element(
        self, schema: TableSchema, element: DecodedElement
    ) -> TupleValue:
        values: dict = self.read_atoms(schema, element)
        for attr, subtable in zip(schema.table_attributes, element.subtables):
            assert attr.table is not None
            inner = TableValue(attr.table)
            for child in subtable.elements:
                inner.rows.append(self.materialize_element(attr.table, child))
            values[attr.name] = inner
        return TupleValue(schema, values)

    def materialize(self) -> TupleValue:
        return self.materialize_element(self.schema, self.decoded)

    # -- partial updates -----------------------------------------------------------

    def update_atoms(self, path: SubtablePath, updates: dict) -> None:
        """Update atomic attribute values of one (sub)object — rewrites a
        single data subtuple; its Mini TID stays stable."""
        schema, element = self.resolve(path)
        current = self.read_atoms(schema, element)
        for name, value in updates.items():
            attr = schema.attribute(name)
            if not attr.is_atomic:
                raise StorageError(f"{name!r} is not an atomic attribute")
            assert attr.atomic_type is not None
            current[name] = attr.atomic_type.validate(value)
        payload = encode_data_subtuple(
            schema.attributes,
            tuple(current[a.name] for a in schema.atomic_attributes),
        )
        self.space.update(element.data, payload)
        self._flush_root_if_moved()

    def insert_element(
        self,
        path: SubtablePath,
        subtable_name: str,
        value: Union[TupleValue, dict, tuple],
        position: Optional[int] = None,
    ) -> DecodedElement:
        """Insert a new subobject into a subtable.

        *position* matters for ordered subtables (MD entry order encodes
        list order); ``None`` appends.
        """
        element_schema, subtable = self.resolve_subtable(path, subtable_name)
        row = TupleValue.from_plain(element_schema, value)
        codec = self._manager._codec
        new_element = codec.store_subtree(self.space, element_schema, row)
        if position is None:
            subtable.elements.append(new_element)
        else:
            subtable.elements.insert(position, new_element)
        self._rewrite_structure()
        return new_element

    def delete_element(self, path: SubtablePath, subtable_name: str, position: int) -> None:
        """Delete one subobject (recursively) from a subtable."""
        _schema, subtable = self.resolve_subtable(path, subtable_name)
        if not 0 <= position < len(subtable.elements):
            raise RecordNotFoundError(
                f"subtable {subtable_name!r} has no element at position {position}"
            )
        victim = subtable.elements.pop(position)
        _delete_subtree(self.space, victim)
        self._rewrite_structure()

    # -- internal ----------------------------------------------------------------------

    def _rewrite_structure(self) -> None:
        from repro.storage.address_space import MD_POOL

        groups = self._manager._codec.refresh_structure(
            self.space, self.schema, self.decoded
        )
        payload = encode_root_md(
            self.space.page_list, groups, self.space.page_roles
        )
        self._manager._segment.update_record(
            self.root_tid,
            payload,
            preferred_pages=self.space.pages_of(MD_POOL) + self.space.pages,
        )
        self.space.page_list_dirty = False

    def _flush_root_if_moved(self) -> None:
        """A data-subtuple update can allocate a page (forwarding); persist
        the grown page list if so."""
        if self.space.page_list_dirty:
            self._rewrite_structure()


def _delete_subtree(space: LocalAddressSpace, element: DecodedElement) -> None:
    for subtable in element.subtables:
        for child in subtable.elements:
            _delete_subtree(space, child)
        if subtable.md is not None:
            space.delete(subtable.md)
    if element.md is not None:
        space.delete(element.md)
    space.delete(element.data)


def _live_records(segment: Segment, page_no: int) -> int:
    page = segment.buffer.fetch(page_no)
    try:
        return page.live_records
    finally:
        segment.buffer.unpin(page_no)
