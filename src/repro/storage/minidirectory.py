"""Mini Directories: the three storage structures of Fig 6.

A complex object's structural information lives in a tree of MD subtuples,
strictly separated from its data subtuples.  The paper analyzes three
layouts:

* **SS1** — one MD subtuple per subtable *and* per complex subobject
  (Fig 6a): symmetric, but many small nodes;
* **SS2** — MD subtuples only per complex subobject (Fig 6b): subtable
  pointer lists are folded upward into their owner's MD subtuple;
* **SS3** — MD subtuples only per subtable (Fig 6c): complex subobjects
  are folded upward into their subtable's MD subtuple as pointer groups
  ("DCC" entries).  This is the layout AIM-II chose.

Invariant (paper, Section 4.1): ``#MD(SS1) > #MD(SS3) > #MD(SS2)`` for any
object with at least one complex subobject.

All three codecs share one decoded in-memory view (:class:`DecodedElement`
/ :class:`DecodedSubtable`) so the complex-object manager, the hierarchical
index addresses, and the tuple names are layout-independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import StorageError
from repro.obs import METRICS
from repro.model.schema import TableSchema
from repro.model.values import TableValue, TupleValue
from repro.storage.address_space import MD_POOL, LocalAddressSpace
from repro.storage.subtuple import (
    POINTER_C,
    POINTER_D,
    decode_data_subtuple,
    decode_md_subtuple,
    encode_data_subtuple,
    encode_md_subtuple,
)
from repro.storage.tid import MiniTID


class StorageStructure(enum.Enum):
    """The Fig 6 storage-structure alternatives."""

    SS1 = "SS1"
    SS2 = "SS2"
    SS3 = "SS3"


@dataclass
class DecodedElement:
    """One (sub)object: its data subtuple plus its subtables.

    ``md`` is the Mini TID of the element's own MD subtuple where the
    layout allocates one (SS1/SS2 complex subobjects), else ``None``.
    """

    data: MiniTID
    subtables: list["DecodedSubtable"] = field(default_factory=list)
    md: Optional[MiniTID] = None

    @property
    def is_flat(self) -> bool:
        return not self.subtables


@dataclass
class DecodedSubtable:
    """One subtable instance: its elements, plus its own MD subtuple where
    the layout allocates one (SS1/SS3)."""

    elements: list[DecodedElement] = field(default_factory=list)
    md: Optional[MiniTID] = None


PointerGroups = list[list[tuple[int, MiniTID]]]


class MiniDirectoryCodec:
    """Shared machinery; subclasses define the layout."""

    structure: StorageStructure

    # ------------------------------------------------------------------ store

    def store_object(
        self, space: LocalAddressSpace, schema: TableSchema, value: TupleValue
    ) -> tuple[PointerGroups, DecodedElement]:
        """Store every subtuple of *value*; return the root-MD body groups
        and the decoded tree (the root element's ``md`` stays ``None`` —
        its structure lives in the root MD subtuple)."""
        element = self._store_element(space, schema, value, is_root=True)
        return self.element_groups(schema, element), element

    def _store_element(
        self,
        space: LocalAddressSpace,
        schema: TableSchema,
        value: TupleValue,
        is_root: bool = False,
    ) -> DecodedElement:
        data_payload = encode_data_subtuple(schema.attributes, value.atomic_values())
        data_mini = space.insert(data_payload)
        subtables: list[DecodedSubtable] = []
        for attr in schema.table_attributes:
            assert attr.table is not None
            subtable_value: TableValue = value[attr.name]
            elements = [
                self._store_element(space, attr.table, row)
                for row in subtable_value
            ]
            subtables.append(self._store_subtable(space, attr.table, elements))
        element = DecodedElement(data=data_mini, subtables=subtables)
        if not is_root:
            self._finish_element(space, schema, element)
        return element

    def store_subtree(
        self, space: LocalAddressSpace, schema: TableSchema, value: TupleValue
    ) -> DecodedElement:
        """Store one new (sub)object subtree — used by partial inserts."""
        return self._store_element(space, schema, value)

    # ---------------------------------------------------------------- layout

    def _store_subtable(
        self,
        space: LocalAddressSpace,
        element_schema: TableSchema,
        elements: list[DecodedElement],
    ) -> DecodedSubtable:
        """Create the subtable node (allocating an MD subtuple if the
        layout has per-subtable MDs)."""
        raise NotImplementedError

    def _finish_element(
        self, space: LocalAddressSpace, schema: TableSchema, element: DecodedElement
    ) -> None:
        """Allocate the element's own MD subtuple if the layout has
        per-subobject MDs."""
        raise NotImplementedError

    def element_groups(self, schema: TableSchema, element: DecodedElement) -> PointerGroups:
        """The pointer groups describing *element* (the content of its MD
        subtuple, or of the root MD subtuple for the root element)."""
        raise NotImplementedError

    def decode_object(
        self, space: LocalAddressSpace, schema: TableSchema, root_groups: PointerGroups
    ) -> DecodedElement:
        """Rebuild the decoded tree reading *only MD subtuples* — this is
        the paper's "navigation on the structural information without
        having to access the data at all"."""
        raise NotImplementedError

    def refresh_structure(
        self, space: LocalAddressSpace, schema: TableSchema, root: DecodedElement
    ) -> PointerGroups:
        """Re-encode every MD subtuple after a structural edit of the
        decoded tree (data subtuples untouched); returns new root groups."""
        raise NotImplementedError

    # ------------------------------------------------------------- utilities

    def md_subtuple_count(self, root: DecodedElement) -> int:
        """Number of MD subtuples, *including* the root MD subtuple."""
        return 1 + _count_inner_md(root)

    @staticmethod
    def element_pointer(element_schema: TableSchema, element: DecodedElement) -> tuple[int, MiniTID]:
        """How a subtable references one element in SS1/SS2: a C pointer to
        its MD subtuple if complex, a D pointer to its data subtuple if
        flat."""
        if element_schema.table_attributes:
            if element.md is None:
                raise StorageError("complex element lacks its MD subtuple")
            return (POINTER_C, element.md)
        return (POINTER_D, element.data)


def _count_inner_md(element: DecodedElement) -> int:
    count = 1 if element.md is not None else 0
    for subtable in element.subtables:
        if subtable.md is not None:
            count += 1
        for child in subtable.elements:
            count += _count_inner_md(child)
    return count


# ---------------------------------------------------------------------------
# SS1 — MD subtuples for subtables AND complex subobjects (Fig 6a)
# ---------------------------------------------------------------------------


class SS1Codec(MiniDirectoryCodec):
    structure = StorageStructure.SS1

    def _store_subtable(self, space, element_schema, elements):
        pointers = [self.element_pointer(element_schema, e) for e in elements]
        md = space.insert(encode_md_subtuple([pointers]), pool=MD_POOL)
        return DecodedSubtable(elements=elements, md=md)

    def _finish_element(self, space, schema, element):
        if not schema.table_attributes:
            return  # flat subobjects have no MD subtuple
        element.md = space.insert(
            encode_md_subtuple(self.element_groups(schema, element)), pool=MD_POOL
        )

    def element_groups(self, schema, element):
        group = [(POINTER_D, element.data)]
        for subtable in element.subtables:
            assert subtable.md is not None
            group.append((POINTER_C, subtable.md))
        return [group]

    def decode_object(self, space, schema, root_groups):
        return self._decode_element(space, schema, root_groups, md=None)

    def _decode_element(self, space, schema, groups, md):
        (group,) = groups
        tag, data = group[0]
        _expect(tag, POINTER_D)
        element = DecodedElement(data=data, md=md)
        for attr, (tag, subtable_md) in zip(schema.table_attributes, group[1:]):
            _expect(tag, POINTER_C)
            assert attr.table is not None
            (pointers,) = decode_md_subtuple(space.read(subtable_md))
            elements = []
            for ptr_tag, mini in pointers:
                if attr.table.table_attributes:
                    _expect(ptr_tag, POINTER_C)
                    child_groups = decode_md_subtuple(space.read(mini))
                    elements.append(
                        self._decode_element(space, attr.table, child_groups, md=mini)
                    )
                else:
                    _expect(ptr_tag, POINTER_D)
                    elements.append(DecodedElement(data=mini))
            element.subtables.append(DecodedSubtable(elements=elements, md=subtable_md))
        return element

    def refresh_structure(self, space, schema, root):
        self._refresh_element(space, schema, root, is_root=True)
        return self.element_groups(schema, root)

    def _refresh_element(self, space, schema, element, is_root=False):
        for attr, subtable in zip(schema.table_attributes, element.subtables):
            assert attr.table is not None
            for child in subtable.elements:
                self._refresh_element(space, attr.table, child)
            pointers = [self.element_pointer(attr.table, e) for e in subtable.elements]
            payload = encode_md_subtuple([pointers])
            if subtable.md is None:
                subtable.md = space.insert(payload, pool=MD_POOL)
            else:
                space.update(subtable.md, payload)
        if is_root or not schema.table_attributes:
            return
        payload = encode_md_subtuple(self.element_groups(schema, element))
        if element.md is None:
            element.md = space.insert(payload, pool=MD_POOL)
        else:
            space.update(element.md, payload)


# ---------------------------------------------------------------------------
# SS2 — MD subtuples only for complex subobjects (Fig 6b)
# ---------------------------------------------------------------------------


class SS2Codec(MiniDirectoryCodec):
    structure = StorageStructure.SS2

    def _store_subtable(self, space, element_schema, elements):
        return DecodedSubtable(elements=elements, md=None)

    def _finish_element(self, space, schema, element):
        if not schema.table_attributes:
            return
        element.md = space.insert(
            encode_md_subtuple(self.element_groups(schema, element)), pool=MD_POOL
        )

    def element_groups(self, schema, element):
        groups: PointerGroups = [[(POINTER_D, element.data)]]
        for attr, subtable in zip(schema.table_attributes, element.subtables):
            assert attr.table is not None
            groups.append(
                [self.element_pointer(attr.table, e) for e in subtable.elements]
            )
        return groups

    def decode_object(self, space, schema, root_groups):
        return self._decode_element(space, schema, root_groups, md=None)

    def _decode_element(self, space, schema, groups, md):
        tag, data = groups[0][0]
        _expect(tag, POINTER_D)
        element = DecodedElement(data=data, md=md)
        for attr, pointers in zip(schema.table_attributes, groups[1:]):
            assert attr.table is not None
            elements = []
            for ptr_tag, mini in pointers:
                if attr.table.table_attributes:
                    _expect(ptr_tag, POINTER_C)
                    child_groups = decode_md_subtuple(space.read(mini))
                    elements.append(
                        self._decode_element(space, attr.table, child_groups, md=mini)
                    )
                else:
                    _expect(ptr_tag, POINTER_D)
                    elements.append(DecodedElement(data=mini))
            element.subtables.append(DecodedSubtable(elements=elements, md=None))
        return element

    def refresh_structure(self, space, schema, root):
        self._refresh_element(space, schema, root, is_root=True)
        return self.element_groups(schema, root)

    def _refresh_element(self, space, schema, element, is_root=False):
        for attr, subtable in zip(schema.table_attributes, element.subtables):
            assert attr.table is not None
            for child in subtable.elements:
                self._refresh_element(space, attr.table, child)
        if is_root or not schema.table_attributes:
            return
        payload = encode_md_subtuple(self.element_groups(schema, element))
        if element.md is None:
            element.md = space.insert(payload, pool=MD_POOL)
        else:
            space.update(element.md, payload)


# ---------------------------------------------------------------------------
# SS3 — MD subtuples only for subtables (Fig 6c, chosen for AIM-II)
# ---------------------------------------------------------------------------


class SS3Codec(MiniDirectoryCodec):
    structure = StorageStructure.SS3

    def _store_subtable(self, space, element_schema, elements):
        groups = [self._element_group(element_schema, e) for e in elements]
        md = space.insert(encode_md_subtuple(groups), pool=MD_POOL)
        return DecodedSubtable(elements=elements, md=md)

    def _finish_element(self, space, schema, element):
        # SS3 never allocates per-subobject MD subtuples.
        return

    def _element_group(
        self, element_schema: TableSchema, element: DecodedElement
    ) -> list[tuple[int, MiniTID]]:
        """One "DCC..." group: D to the element's data subtuple, then C to
        each of its subtables' MD subtuples."""
        group = [(POINTER_D, element.data)]
        for subtable in element.subtables:
            assert subtable.md is not None
            group.append((POINTER_C, subtable.md))
        return group

    def element_groups(self, schema, element):
        return [self._element_group(schema, element)]

    def decode_object(self, space, schema, root_groups):
        (group,) = root_groups
        return self._decode_element(space, schema, group)

    def _decode_element(self, space, schema, group):
        tag, data = group[0]
        _expect(tag, POINTER_D)
        element = DecodedElement(data=data, md=None)
        for attr, (tag, subtable_md) in zip(schema.table_attributes, group[1:]):
            _expect(tag, POINTER_C)
            assert attr.table is not None
            groups = decode_md_subtuple(space.read(subtable_md))
            elements = [
                self._decode_element(space, attr.table, child_group)
                for child_group in groups
            ]
            element.subtables.append(DecodedSubtable(elements=elements, md=subtable_md))
        return element

    def refresh_structure(self, space, schema, root):
        self._refresh_element(space, schema, root)
        return self.element_groups(schema, root)

    def _refresh_element(self, space, schema, element):
        for attr, subtable in zip(schema.table_attributes, element.subtables):
            assert attr.table is not None
            for child in subtable.elements:
                self._refresh_element(space, attr.table, child)
            groups = [self._element_group(attr.table, e) for e in subtable.elements]
            payload = encode_md_subtuple(groups)
            if subtable.md is None:
                subtable.md = space.insert(payload, pool=MD_POOL)
            else:
                space.update(subtable.md, payload)


def _expect(tag: int, wanted: int) -> None:
    """Validate a pointer tag while decoding — every call is one D or C
    pointer dereference during Mini-Directory navigation, which is exactly
    the work the paper's Section 4.1/4.2 analysis counts."""
    if METRICS.enabled:
        METRICS.inc(
            "storage.d_pointer_derefs"
            if wanted == POINTER_D
            else "storage.c_pointer_derefs"
        )
    if tag != wanted:
        kind = {POINTER_C: "C", POINTER_D: "D"}.get(wanted, "?")
        raise StorageError(f"corrupt Mini Directory: expected a {kind} pointer")


_CODECS = {
    StorageStructure.SS1: SS1Codec(),
    StorageStructure.SS2: SS2Codec(),
    StorageStructure.SS3: SS3Codec(),
}


def get_codec(structure: StorageStructure) -> MiniDirectoryCodec:
    return _CODECS[structure]
