"""Byte codecs for subtuples.

Two kinds of subtuple exist (Section 4.1):

* **data subtuples** hold the "first level" atomic attribute values of an
  object or subobject — and *no* structural information;
* **MD subtuples** hold only structure: ``D`` pointers (→ data subtuples)
  and ``C`` pointers (→ MD subtuples), encoded as Mini TIDs, plus — in the
  root MD subtuple — the complex object's page list.

A one-byte kind tag leads every subtuple so a page can be audited.
"""

from __future__ import annotations

import datetime
import struct
from typing import Optional, Sequence

from repro.errors import StorageError
from repro.model.schema import AttributeSchema
from repro.model.types import AtomicType
from repro.model.values import AtomicValue
from repro.storage.tid import MiniTID

# Subtuple kind tags.
KIND_DATA = 0xD1
KIND_MD = 0xE1
KIND_ROOT = 0xE2

# Pointer tags inside MD subtuples — the paper's "D" and "C".
POINTER_D = 0x01
POINTER_C = 0x02

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

#: page-list entry representing a gap left by a removed page
_PAGE_GAP = 0xFFFFFFFF


# ---------------------------------------------------------------------------
# Data subtuples
# ---------------------------------------------------------------------------


def encode_data_subtuple(
    attributes: Sequence[AttributeSchema], values: Sequence[AtomicValue]
) -> bytes:
    """Encode the atomic attribute values (in schema order).

    *attributes* may include table-valued attributes; they are skipped, so
    callers can pass a full schema attribute list together with
    ``TupleValue.atomic_values()``.
    """
    atomic_attrs = [a for a in attributes if a.is_atomic]
    if len(atomic_attrs) != len(values):
        raise StorageError(
            f"expected {len(atomic_attrs)} atomic values, got {len(values)}"
        )
    null_bitmap = bytearray((len(atomic_attrs) + 7) // 8)
    body = bytearray()
    for index, (attr, value) in enumerate(zip(atomic_attrs, values)):
        if value is None:
            null_bitmap[index // 8] |= 1 << (index % 8)
            continue
        assert attr.atomic_type is not None
        body += _encode_atom(attr.atomic_type, value)
    return bytes([KIND_DATA]) + bytes(null_bitmap) + bytes(body)


def decode_data_subtuple(
    attributes: Sequence[AttributeSchema], payload: bytes
) -> tuple[AtomicValue, ...]:
    """Inverse of :func:`encode_data_subtuple`."""
    atomic_attrs = [a for a in attributes if a.is_atomic]
    if not payload or payload[0] != KIND_DATA:
        raise StorageError("not a data subtuple")
    bitmap_len = (len(atomic_attrs) + 7) // 8
    null_bitmap = payload[1:1 + bitmap_len]
    offset = 1 + bitmap_len
    values: list[AtomicValue] = []
    for index, attr in enumerate(atomic_attrs):
        if null_bitmap[index // 8] & (1 << (index % 8)):
            values.append(None)
            continue
        assert attr.atomic_type is not None
        value, offset = _decode_atom(attr.atomic_type, payload, offset)
        values.append(value)
    return tuple(values)


def _encode_atom(type_: AtomicType, value: AtomicValue) -> bytes:
    if type_ is AtomicType.INT:
        return _I64.pack(value)  # type: ignore[arg-type]
    if type_ is AtomicType.FLOAT:
        return _F64.pack(value)  # type: ignore[arg-type]
    if type_ is AtomicType.STRING:
        raw = str(value).encode("utf-8")
        if len(raw) > 0xFFFF:
            raise StorageError("string longer than 65535 bytes")
        return _U16.pack(len(raw)) + raw
    if type_ is AtomicType.BOOL:
        return b"\x01" if value else b"\x00"
    if type_ is AtomicType.DATE:
        assert isinstance(value, datetime.date)
        return _U32.pack(value.toordinal())
    raise StorageError(f"unhandled type {type_}")  # pragma: no cover


def _decode_atom(type_: AtomicType, payload: bytes, offset: int) -> tuple[AtomicValue, int]:
    if type_ is AtomicType.INT:
        return _I64.unpack_from(payload, offset)[0], offset + 8
    if type_ is AtomicType.FLOAT:
        return _F64.unpack_from(payload, offset)[0], offset + 8
    if type_ is AtomicType.STRING:
        length = _U16.unpack_from(payload, offset)[0]
        start = offset + 2
        return payload[start:start + length].decode("utf-8"), start + length
    if type_ is AtomicType.BOOL:
        return payload[offset] != 0, offset + 1
    if type_ is AtomicType.DATE:
        ordinal = _U32.unpack_from(payload, offset)[0]
        return datetime.date.fromordinal(ordinal), offset + 4
    raise StorageError(f"unhandled type {type_}")  # pragma: no cover


# ---------------------------------------------------------------------------
# MD subtuples
# ---------------------------------------------------------------------------


def encode_pointers(pointers: Sequence[tuple[int, MiniTID]]) -> bytes:
    """Encode a D/C pointer sequence: u16 count, then (tag, MiniTID) each."""
    out = bytearray(_U16.pack(len(pointers)))
    for tag, mini in pointers:
        if tag not in (POINTER_D, POINTER_C):
            raise StorageError(f"invalid pointer tag {tag}")
        out.append(tag)
        out += mini.encode()
    return bytes(out)


def decode_pointers(payload: bytes, offset: int) -> tuple[list[tuple[int, MiniTID]], int]:
    count = _U16.unpack_from(payload, offset)[0]
    offset += 2
    pointers: list[tuple[int, MiniTID]] = []
    for _ in range(count):
        tag = payload[offset]
        mini = MiniTID.decode(payload, offset + 1)
        pointers.append((tag, mini))
        offset += 5
    return pointers, offset


PointerGroup = Sequence[tuple[int, MiniTID]]


def encode_pointer_groups(groups: Sequence[PointerGroup]) -> bytes:
    """Encode a sequence of pointer groups (u16 group count, then each
    group as a pointer sequence).

    Groups give the three storage structures their shapes: e.g. an SS3
    subtable MD subtuple uses one group per subobject, an SS2 MD subtuple
    one group per subtable.
    """
    out = bytearray(_U16.pack(len(groups)))
    for group in groups:
        out += encode_pointers(group)
    return bytes(out)


def decode_pointer_groups(payload: bytes, offset: int) -> tuple[list[list[tuple[int, MiniTID]]], int]:
    count = _U16.unpack_from(payload, offset)[0]
    offset += 2
    groups: list[list[tuple[int, MiniTID]]] = []
    for _ in range(count):
        pointers, offset = decode_pointers(payload, offset)
        groups.append(pointers)
    return groups, offset


def encode_md_subtuple(groups: Sequence[PointerGroup]) -> bytes:
    """An inner MD subtuple: kind tag + pointer groups."""
    return bytes([KIND_MD]) + encode_pointer_groups(groups)


def decode_md_subtuple(payload: bytes) -> list[list[tuple[int, MiniTID]]]:
    if not payload or payload[0] != KIND_MD:
        raise StorageError("not an MD subtuple")
    groups, _offset = decode_pointer_groups(payload, 1)
    return groups


#: high bit of a page-list entry marks an MD page (structure/data
#: separation at the page level)
_MD_PAGE_FLAG = 0x8000_0000


def encode_root_md(
    page_list: Sequence[Optional[int]],
    groups: Sequence[PointerGroup],
    page_roles: Optional[Sequence[bool]] = None,
) -> bytes:
    """The root MD subtuple: kind tag + page list + pointer groups.

    The page list *is* the complex object's local address space; ``None``
    entries are gaps left by removed pages (kept so existing Mini TIDs stay
    valid — Section 4.1).  ``page_roles[i]`` marks entry *i* as an MD page
    (True) or data page (False), encoded in the entry's high bit.
    """
    out = bytearray([KIND_ROOT])
    out += _U16.pack(len(page_list))
    roles = page_roles if page_roles is not None else [False] * len(page_list)
    for entry, is_md in zip(page_list, roles):
        if entry is None:
            out += _U32.pack(_PAGE_GAP)
        else:
            if entry >= _MD_PAGE_FLAG - 1:  # keep 0xFFFFFFFF free for gaps
                raise StorageError(f"page number {entry} out of range")
            out += _U32.pack(entry | (_MD_PAGE_FLAG if is_md else 0))
    out += encode_pointer_groups(groups)
    return bytes(out)


def decode_root_md(
    payload: bytes,
) -> tuple[list[Optional[int]], list[list[tuple[int, MiniTID]]], list[bool]]:
    """Inverse of :func:`encode_root_md`; returns (page list, groups,
    page roles)."""
    if not payload or payload[0] != KIND_ROOT:
        raise StorageError("not a root MD subtuple")
    count = _U16.unpack_from(payload, 1)[0]
    offset = 3
    page_list: list[Optional[int]] = []
    page_roles: list[bool] = []
    for _ in range(count):
        entry = _U32.unpack_from(payload, offset)[0]
        if entry == _PAGE_GAP:
            page_list.append(None)
            page_roles.append(False)
        else:
            page_list.append(entry & ~_MD_PAGE_FLAG)
            page_roles.append(bool(entry & _MD_PAGE_FLAG))
        offset += 4
    groups, _offset = decode_pointer_groups(payload, offset)
    return page_list, groups, page_roles


def subtuple_kind(payload: bytes) -> int:
    if not payload:
        raise StorageError("empty subtuple")
    return payload[0]
