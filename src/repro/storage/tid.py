"""TIDs and Mini TIDs.

A :class:`TID` addresses a record anywhere in a database segment (page
number relative to the segment, plus slot).  A :class:`MiniTID` addresses a
subtuple *inside one complex object*: its page component is an index into
the object's page list (the local address space), not a segment page number
— which is what makes whole-object relocation possible without touching any
pointer (Section 4.1 of the paper).
"""

from __future__ import annotations

import struct
from typing import NamedTuple, Optional

from repro.errors import StorageError
from repro.storage.constants import MINI_TID_SIZE, TID_SIZE

_TID_STRUCT = struct.Struct(">IH")
_MINI_STRUCT = struct.Struct(">HH")

#: Wire value representing "no Mini TID".
_MINI_NONE = b"\xff\xff\xff\xff"


class TID(NamedTuple):
    """Segment-global tuple identifier: (page number, slot)."""

    page: int
    slot: int

    def encode(self) -> bytes:
        return _TID_STRUCT.pack(self.page, self.slot)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> "TID":
        if len(data) - offset < TID_SIZE:
            raise StorageError("truncated TID")
        page, slot = _TID_STRUCT.unpack_from(data, offset)
        return cls(page, slot)

    def __str__(self) -> str:
        return f"TID({self.page},{self.slot})"


class MiniTID(NamedTuple):
    """Object-local tuple identifier: (page-list index, slot).

    The page component is translated through the complex object's page list
    into a segment page number on every access.
    """

    local_page: int
    slot: int

    def encode(self) -> bytes:
        return _MINI_STRUCT.pack(self.local_page, self.slot)

    @classmethod
    def decode(cls, data: bytes, offset: int = 0) -> "MiniTID":
        if len(data) - offset < MINI_TID_SIZE:
            raise StorageError("truncated Mini TID")
        local_page, slot = _MINI_STRUCT.unpack_from(data, offset)
        return cls(local_page, slot)

    def __str__(self) -> str:
        return f"MiniTID({self.local_page},{self.slot})"


def encode_optional_mini(mini: Optional[MiniTID]) -> bytes:
    return _MINI_NONE if mini is None else mini.encode()


def decode_optional_mini(data: bytes, offset: int = 0) -> Optional[MiniTID]:
    chunk = bytes(data[offset:offset + MINI_TID_SIZE])
    if chunk == _MINI_NONE:
        return None
    return MiniTID.decode(chunk)
