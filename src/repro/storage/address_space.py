"""A complex object's local address space.

Section 4.1 of the paper: every complex object owns a *page list* (stored in
its root MD subtuple) naming the pages that hold its subtuples.  Intra-object
pointers ("D" and "C") are Mini TIDs whose page component indexes this list,
so

* new subtuples cluster on pages the object already owns;
* removing a page leaves a ``None`` gap (existing Mini TIDs stay valid);
* adding a page reuses a gap or appends (other entries never move);
* relocating / checking out the whole object only rewrites the page list.

The address space keeps the paper's *separation of structural information
and data* down to the page level: MD subtuples live on MD pages and data
subtuples on data pages (the role is encoded in the page-list entry), so
navigating a complex object touches no data page at all.

Updates keep Mini TIDs stable via local forwarding: a record that outgrows
its page leaves an ``LFORWARD`` stub (payload: Mini TID of the relocated
body) at its home slot.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import PageFullError, RecordNotFoundError, SegmentError, StorageError
from repro.obs import METRICS
from repro.storage.constants import (
    FLAG_LCHAIN,
    FLAG_LCHAIN_PART,
    FLAG_LFORWARD,
    FLAG_NORMAL,
    FLAG_REMOTE,
    MAX_RECORD_SIZE,
    MINI_TID_SIZE,
)
from repro.storage.segment import Segment
from repro.storage.tid import MiniTID, TID

#: "no next part" marker in local chains
_NIL_MINI = MiniTID(0xFFFF, 0xFFFF)

#: largest chunk stored per local chain part
_LOCAL_CHUNK = MAX_RECORD_SIZE - MINI_TID_SIZE - 64

#: page pools: data subtuples vs MD (structural) subtuples
DATA_POOL = False
MD_POOL = True


class LocalAddressSpace:
    """Clustered, Mini-TID-addressed record storage for one complex object."""

    def __init__(
        self,
        segment: Segment,
        page_list: Optional[list[Optional[int]]] = None,
        page_roles: Optional[Sequence[bool]] = None,
    ):
        self._segment = segment
        self.page_list: list[Optional[int]] = list(page_list or [])
        self.page_roles: list[bool] = (
            list(page_roles) if page_roles is not None
            else [DATA_POOL] * len(self.page_list)
        )
        if len(self.page_roles) != len(self.page_list):
            raise StorageError("page list and page roles must align")
        #: set when the page list changed (the root MD subtuple must be
        #: rewritten by the caller)
        self.page_list_dirty = False

    # -- address translation ------------------------------------------------------

    def translate(self, mini: MiniTID) -> TID:
        """Local Mini TID -> segment-global TID via the page list."""
        if METRICS.enabled:
            METRICS.inc("storage.page_list_lookups")
        if mini.local_page >= len(self.page_list):
            raise StorageError(f"{mini} outside local address space")
        page = self.page_list[mini.local_page]
        if page is None:
            raise StorageError(f"{mini} points into a page-list gap")
        return TID(page, mini.slot)

    @property
    def pages(self) -> list[int]:
        """Live (non-gap) pages, in page-list order."""
        return [p for p in self.page_list if p is not None]

    def pages_of(self, pool: bool) -> list[int]:
        return [
            p
            for p, role in zip(self.page_list, self.page_roles)
            if p is not None and role == pool
        ]

    def _local_index(self, page_no: int, pool: bool = DATA_POOL) -> int:
        """Index of *page_no* in the page list, adding it if new.

        A gap is reused if available; otherwise the list grows at its end —
        the paper's stability rule verbatim.
        """
        for index, entry in enumerate(self.page_list):
            if entry == page_no:
                return index
        for index, entry in enumerate(self.page_list):
            if entry is None:
                self.page_list[index] = page_no
                self.page_roles[index] = pool
                self.page_list_dirty = True
                return index
        self.page_list.append(page_no)
        self.page_roles.append(pool)
        self.page_list_dirty = True
        return len(self.page_list) - 1

    def _pool_of(self, mini: MiniTID) -> bool:
        return self.page_roles[mini.local_page]

    # -- record operations -----------------------------------------------------------

    def insert(self, payload: bytes, flag: int = FLAG_NORMAL, pool: bool = DATA_POOL) -> MiniTID:
        """Insert a subtuple, clustering onto the object's own pages of the
        matching pool (data pages or MD pages).  Subtuples larger than a
        page — an MD subtuple of a subtable with thousands of entries —
        are chained transparently."""
        if len(payload) + 1 > MAX_RECORD_SIZE:
            head = self._build_chain_parts(payload, pool)
            return self.insert(head, flag=FLAG_LCHAIN, pool=pool)
        needed = len(payload) + 5
        for entry, role in zip(self.page_list, self.page_roles):
            if entry is None or role != pool:
                continue
            if self._segment.free_space_on(entry) >= needed:
                try:
                    tid = self._segment.insert_record_on(entry, payload, flag)
                    return MiniTID(self._local_index(tid.page, pool), tid.slot)
                except PageFullError:
                    continue
        page_no = self._segment.allocate_page()
        tid = self._segment.insert_record_on(page_no, payload, flag)
        return MiniTID(self._local_index(tid.page, pool), tid.slot)

    # -- local chains ------------------------------------------------------------

    def _build_chain_parts(self, payload: bytes, pool: bool) -> bytes:
        import struct

        chunks = [
            payload[i:i + _LOCAL_CHUNK]
            for i in range(0, len(payload), _LOCAL_CHUNK)
        ]
        next_mini = _NIL_MINI
        for chunk in reversed(chunks):
            part = next_mini.encode() + chunk
            next_mini = self.insert(part, flag=FLAG_LCHAIN_PART, pool=pool)
        return struct.pack(">I", len(payload)) + next_mini.encode()

    def _read_chain(self, head_payload: bytes) -> bytes:
        import struct

        total = struct.unpack_from(">I", head_payload, 0)[0]
        current = MiniTID.decode(head_payload, 4)
        out = bytearray()
        while current != _NIL_MINI:
            flag, part = self._read_raw(current)
            if flag != FLAG_LCHAIN_PART:
                raise RecordNotFoundError("broken local record chain")
            current = MiniTID.decode(part, 0)
            out += part[MINI_TID_SIZE:]
        if len(out) != total:
            raise RecordNotFoundError("local chain length mismatch")
        return bytes(out)

    def _delete_chain(self, head_payload: bytes) -> None:
        current = MiniTID.decode(head_payload, 4)
        while current != _NIL_MINI:
            flag, part = self._read_raw(current)
            next_mini = MiniTID.decode(part, 0)
            self._delete_raw(current)
            current = next_mini

    def read(self, mini: MiniTID) -> bytes:
        """Read a subtuple, following local forwards and reassembling
        local chains."""
        if METRICS.enabled and mini.local_page < len(self.page_roles):
            METRICS.inc(
                "storage.md_subtuple_reads"
                if self.page_roles[mini.local_page]
                else "storage.data_subtuple_reads"
            )
        flag, payload = self._read_raw(mini)
        if flag == FLAG_LFORWARD:
            target = MiniTID.decode(payload)
            flag, payload = self._read_raw(target)
            if flag not in (FLAG_REMOTE, FLAG_LCHAIN):
                raise RecordNotFoundError(f"broken local forward chain at {mini}")
        if flag == FLAG_LCHAIN:
            return self._read_chain(payload)
        return payload

    def _read_raw(self, mini: MiniTID) -> tuple[int, bytes]:
        tid = self.translate(mini)
        page = self._segment.buffer.fetch(tid.page)
        try:
            return page.read(tid.slot)
        finally:
            self._segment.buffer.unpin(tid.page)

    def update(self, mini: MiniTID, payload: bytes) -> None:
        """Update a subtuple; its Mini TID stays valid forever (local
        forwarding + local chaining handle any growth)."""
        pool = self._pool_of(mini)
        flag, home_payload = self._read_raw(mini)
        fits_page = len(payload) + 1 <= MAX_RECORD_SIZE
        if flag == FLAG_LFORWARD:
            remote = MiniTID.decode(home_payload)
            remote_flag, remote_payload = self._read_raw(remote)
            if remote_flag == FLAG_LCHAIN:
                self._delete_chain(remote_payload)
                self._delete_raw(remote)
            else:
                if fits_page:
                    try:
                        self._update_in_place(remote, payload, FLAG_REMOTE)
                        return
                    except PageFullError:
                        pass
                self._delete_raw(remote)
            new_remote = self._store_body(payload, pool)
            self._update_in_place(mini, new_remote.encode(), FLAG_LFORWARD)
            return
        if flag == FLAG_LCHAIN:
            self._delete_chain(home_payload)
            if not fits_page:
                head = self._build_chain_parts(payload, pool)
                self._update_in_place(mini, head, FLAG_LCHAIN)
                return
            try:
                self._update_in_place(mini, payload, FLAG_NORMAL)
                return
            except PageFullError:
                remote = self._store_body(payload, pool)
                self._update_in_place(mini, remote.encode(), FLAG_LFORWARD)
                return
        if fits_page:
            try:
                self._update_in_place(mini, payload, flag)
                return
            except PageFullError:
                remote = self._store_body(payload, pool)
                self._update_in_place(mini, remote.encode(), FLAG_LFORWARD)
                return
        head = self._build_chain_parts(payload, pool)
        try:
            self._update_in_place(mini, head, FLAG_LCHAIN)
        except PageFullError:
            head_mini = self.insert(head, flag=FLAG_LCHAIN, pool=pool)
            self._update_in_place(mini, head_mini.encode(), FLAG_LFORWARD)

    def _store_body(self, payload: bytes, pool: bool) -> MiniTID:
        if len(payload) + 1 > MAX_RECORD_SIZE:
            head = self._build_chain_parts(payload, pool)
            return self.insert(head, flag=FLAG_LCHAIN, pool=pool)
        return self.insert(payload, flag=FLAG_REMOTE, pool=pool)

    def _update_in_place(self, mini: MiniTID, payload: bytes, flag: int) -> None:
        tid = self.translate(mini)
        page = self._segment.buffer.fetch(tid.page)
        try:
            page.update(tid.slot, payload, flag)
            self._segment._free_map[tid.page] = page.free_space
        finally:
            self._segment.buffer.unpin(tid.page, dirty=True)

    def delete(self, mini: MiniTID) -> None:
        """Delete a subtuple; a page that empties is freed, leaving a gap
        in the page list."""
        flag, payload = self._read_raw(mini)
        if flag == FLAG_LFORWARD:
            remote = MiniTID.decode(payload)
            remote_flag, remote_payload = self._read_raw(remote)
            if remote_flag == FLAG_LCHAIN:
                self._delete_chain(remote_payload)
            self._delete_raw(remote)
        elif flag == FLAG_LCHAIN:
            self._delete_chain(payload)
        self._delete_raw(mini)

    def _delete_raw(self, mini: MiniTID) -> None:
        tid = self.translate(mini)
        page = self._segment.buffer.fetch(tid.page)
        try:
            page.delete(tid.slot)
            live = page.live_records
            self._segment._free_map[tid.page] = page.free_space
        finally:
            self._segment.buffer.unpin(tid.page, dirty=True)
        if live == 0:
            self.remove_page(tid.page)

    def remove_page(self, page_no: int) -> None:
        """Drop a page from the address space, leaving a ``None`` gap."""
        for index, entry in enumerate(self.page_list):
            if entry == page_no:
                self.page_list[index] = None
                self.page_list_dirty = True
                if self._segment.owns(page_no):
                    self._segment.free_page(page_no)
                return
        raise SegmentError(f"page {page_no} not in this address space")
