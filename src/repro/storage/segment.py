"""Database segments: page allocation domains with record-level access.

A segment owns a set of pages of the shared paged file and provides
TID-addressed record operations with *stable TIDs*: an update that outgrows
its page leaves a ``FORWARD`` stub at the record's home slot and stores the
body as a ``REMOTE`` record elsewhere, so every TID ever handed out stays
valid (the property the paper needs for root-MD TIDs in indexes).

The segment also keeps an approximate free-space map so inserts can honour
*preferred pages* — the hook the complex-object manager uses to implement
the paper's clustering rule ("new data are usually stored in pages which
already contain data of this complex object").
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from repro.errors import PageFullError, RecordNotFoundError, SegmentError
from repro.storage.buffer import BufferManager
from repro.storage.constants import (
    CHAIN_CHUNK,
    CHAIN_PART_HEADER,
    FLAG_CHAIN,
    FLAG_CHAIN_PART,
    FLAG_FORWARD,
    FLAG_NORMAL,
    FLAG_REMOTE,
    MAX_RECORD_SIZE,
)
from repro.storage.tid import TID

#: "no next part" marker in chain-part headers
_NIL_TID = TID(0xFFFFFFFF, 0xFFFF)


class Segment:
    """A page-allocation domain over a shared buffer manager."""

    def __init__(self, buffer: BufferManager, name: str = "segment"):
        self._buffer = buffer
        self.name = name
        #: pages owned by this segment, in allocation order
        self._pages: list[int] = []
        self._free_pages: list[int] = []
        #: page -> approximate free bytes
        self._free_map: dict[int, int] = {}

    # -- page management -------------------------------------------------------

    @property
    def buffer(self) -> BufferManager:
        return self._buffer

    @property
    def pages(self) -> tuple[int, ...]:
        return tuple(self._pages)

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def allocate_page(self) -> int:
        """Take a fresh (or recycled) formatted page into this segment."""
        if self._free_pages:
            page_no = self._free_pages.pop()
            page = self._buffer.fetch(page_no)
            try:
                page.format(page.buffer)
            finally:
                self._buffer.unpin(page_no, dirty=True)
        else:
            page_no, _page = self._buffer.new_page()
            self._buffer.unpin(page_no, dirty=True)
        self._pages.append(page_no)
        self._free_map[page_no] = _usable_space(self._buffer, page_no)
        return page_no

    def free_page(self, page_no: int) -> None:
        """Return a page to the segment's free pool."""
        if page_no not in self._free_map:
            raise SegmentError(f"page {page_no} is not owned by segment {self.name}")
        self._pages.remove(page_no)
        del self._free_map[page_no]
        self._free_pages.append(page_no)

    def owns(self, page_no: int) -> bool:
        return page_no in self._free_map

    # -- record operations --------------------------------------------------------

    def insert_record(
        self,
        payload: bytes,
        preferred_pages: Optional[Sequence[int]] = None,
        flag: int = FLAG_NORMAL,
    ) -> TID:
        """Insert a record, trying *preferred_pages* first (clustering).

        Records larger than one page are chained across pages
        transparently; their TID addresses the chain head.
        """
        if len(payload) + 1 > MAX_RECORD_SIZE:
            return self._insert_chained(payload, preferred_pages)
        needed = len(payload) + 5  # flag + slot entry, conservative
        candidates: list[int] = []
        if preferred_pages:
            candidates.extend(
                p for p in preferred_pages
                if p is not None and self._free_map.get(p, 0) >= needed
            )
        if not candidates:
            candidates.extend(
                p for p in reversed(self._pages) if self._free_map.get(p, 0) >= needed
            )
        for page_no in candidates:
            try:
                return self._insert_on(page_no, payload, flag)
            except PageFullError:
                # The estimate was stale; refresh it and move on.
                self._free_map[page_no] = _usable_space(self._buffer, page_no)
                continue
        page_no = self.allocate_page()
        return self._insert_on(page_no, payload, flag)

    def insert_record_on(self, page_no: int, payload: bytes, flag: int = FLAG_NORMAL) -> TID:
        """Insert on a specific page or raise :class:`PageFullError`."""
        if not self.owns(page_no):
            raise SegmentError(f"page {page_no} is not owned by segment {self.name}")
        return self._insert_on(page_no, payload, flag)

    def _insert_on(self, page_no: int, payload: bytes, flag: int) -> TID:
        page = self._buffer.fetch(page_no)
        try:
            slot = page.insert(payload, flag)
            self._free_map[page_no] = page.free_space
        finally:
            self._buffer.unpin(page_no, dirty=True)
        return TID(page_no, slot)

    # -- multi-page (chained) records ---------------------------------------------

    def _build_chain_parts(
        self, payload: bytes, preferred_pages: Optional[Sequence[int]]
    ) -> bytes:
        """Write an oversized payload's chain parts; returns the head
        payload (total length + first part's TID) for the caller to
        place."""
        import struct

        chunks = [
            payload[i:i + CHAIN_CHUNK] for i in range(0, len(payload), CHAIN_CHUNK)
        ]
        next_tid = _NIL_TID
        # write parts back-to-front so each knows its successor
        for chunk in reversed(chunks):
            part = next_tid.encode() + chunk
            next_tid = self.insert_record(
                part, preferred_pages=preferred_pages, flag=FLAG_CHAIN_PART
            )
        return struct.pack(">I", len(payload)) + next_tid.encode()

    def _insert_chained(
        self, payload: bytes, preferred_pages: Optional[Sequence[int]]
    ) -> TID:
        head = self._build_chain_parts(payload, preferred_pages)
        return self.insert_record(head, preferred_pages=preferred_pages, flag=FLAG_CHAIN)

    def _store_body(
        self, payload: bytes, preferred_pages: Optional[Sequence[int]]
    ) -> TID:
        """Store an out-of-home record body: REMOTE if it fits a page,
        else a chain head."""
        if len(payload) + 1 > MAX_RECORD_SIZE:
            head = self._build_chain_parts(payload, preferred_pages)
            return self.insert_record(
                head, preferred_pages=preferred_pages, flag=FLAG_CHAIN
            )
        return self.insert_record(
            payload, preferred_pages=preferred_pages, flag=FLAG_REMOTE
        )

    def _read_chain(self, head_payload: bytes) -> bytes:
        import struct

        total = struct.unpack_from(">I", head_payload, 0)[0]
        current = TID.decode(head_payload, 4)
        out = bytearray()
        while current != _NIL_TID:
            flag, part = self._read_raw(current)
            if flag != FLAG_CHAIN_PART:
                raise RecordNotFoundError("broken record chain")
            current = TID.decode(part, 0)
            out += part[CHAIN_PART_HEADER:]
        if len(out) != total:
            raise RecordNotFoundError("record chain length mismatch")
        return bytes(out)

    def _delete_chain(self, head_payload: bytes) -> None:
        current = TID.decode(head_payload, 4)
        while current != _NIL_TID:
            flag, part = self._read_raw(current)
            next_tid = TID.decode(part, 0)
            self._delete_raw(current)
            current = next_tid

    def read_record(self, tid: TID) -> bytes:
        """Read a record, transparently following forward stubs and
        reassembling multi-page chains."""
        flag, payload = self._read_raw(tid)
        if flag == FLAG_FORWARD:
            target = TID.decode(payload)
            flag, payload = self._read_raw(target)
            if flag not in (FLAG_REMOTE, FLAG_CHAIN):
                raise RecordNotFoundError(f"broken forward chain at {tid}")
        if flag == FLAG_CHAIN:
            return self._read_chain(payload)
        return payload

    def _read_raw(self, tid: TID) -> tuple[int, bytes]:
        page = self._buffer.fetch(tid.page)
        try:
            return page.read(tid.slot)
        finally:
            self._buffer.unpin(tid.page)

    def update_record(
        self,
        tid: TID,
        payload: bytes,
        preferred_pages: Optional[Sequence[int]] = None,
    ) -> None:
        """Update a record in place; the TID stays valid forever.

        If the new payload no longer fits its home page, the body moves to
        another page as a ``REMOTE`` record (*preferred_pages* first) and
        the home slot becomes a ``FORWARD`` stub (an existing stub is
        retargeted, so chains never grow beyond one hop).
        """
        flag, home_payload = self._read_raw(tid)
        fits_page = len(payload) + 1 <= MAX_RECORD_SIZE
        if flag == FLAG_FORWARD:
            remote = TID.decode(home_payload)
            remote_flag, remote_payload = self._read_raw(remote)
            if remote_flag == FLAG_CHAIN:
                self._delete_chain(remote_payload)
                self._delete_raw(remote)
            else:
                if fits_page:
                    try:
                        self._update_in_place(remote, payload, FLAG_REMOTE)
                        return
                    except PageFullError:
                        pass
                self._delete_raw(remote)
            new_remote = self._store_body(payload, preferred_pages)
            self._update_in_place(tid, new_remote.encode(), FLAG_FORWARD)
            return
        if flag == FLAG_CHAIN:
            self._delete_chain(home_payload)
            if not fits_page:
                head = self._build_chain_parts(payload, preferred_pages)
                self._update_in_place(tid, head, FLAG_CHAIN)
                return
            try:
                self._update_in_place(tid, payload, FLAG_NORMAL)
                return
            except PageFullError:
                remote = self._store_body(payload, preferred_pages)
                self._update_in_place(tid, remote.encode(), FLAG_FORWARD)
                return
        if fits_page:
            try:
                self._update_in_place(tid, payload, flag)
                return
            except PageFullError:
                remote = self._store_body(payload, preferred_pages)
                self._update_in_place(tid, remote.encode(), FLAG_FORWARD)
                return
        # Oversized: chain the body, head in place if possible.
        head = self._build_chain_parts(payload, preferred_pages)
        try:
            self._update_in_place(tid, head, FLAG_CHAIN)
        except PageFullError:
            head_tid = self.insert_record(
                head, preferred_pages=preferred_pages, flag=FLAG_CHAIN
            )
            self._update_in_place(tid, head_tid.encode(), FLAG_FORWARD)

    def _update_in_place(self, tid: TID, payload: bytes, flag: int) -> None:
        page = self._buffer.fetch(tid.page)
        try:
            page.update(tid.slot, payload, flag)
            self._free_map[tid.page] = page.free_space
        finally:
            self._buffer.unpin(tid.page, dirty=True)

    def delete_record(self, tid: TID) -> None:
        flag, payload = self._read_raw(tid)
        if flag == FLAG_FORWARD:
            remote = TID.decode(payload)
            remote_flag, remote_payload = self._read_raw(remote)
            if remote_flag == FLAG_CHAIN:
                self._delete_chain(remote_payload)
            self._delete_raw(remote)
        elif flag == FLAG_CHAIN:
            self._delete_chain(payload)
        self._delete_raw(tid)

    def _delete_raw(self, tid: TID) -> None:
        page = self._buffer.fetch(tid.page)
        try:
            page.delete(tid.slot)
            self._free_map[tid.page] = page.free_space
        finally:
            self._buffer.unpin(tid.page, dirty=True)

    # -- scans ------------------------------------------------------------------------

    def scan(self, pages: Optional[Iterable[int]] = None) -> Iterator[tuple[TID, bytes]]:
        """Yield (home TID, payload) for every live record.

        ``REMOTE`` records are skipped (their home stub yields them), so
        records are produced exactly once under stable home TIDs.
        """
        for page_no in (self._pages if pages is None else pages):
            page = self._buffer.fetch(page_no)
            try:
                entries = list(page.slots())
            finally:
                self._buffer.unpin(page_no)
            for slot, flag, payload in entries:
                if flag in (FLAG_REMOTE, FLAG_CHAIN_PART):
                    continue
                if flag in (FLAG_FORWARD, FLAG_CHAIN):
                    yield TID(page_no, slot), self.read_record(TID(page_no, slot))
                else:
                    yield TID(page_no, slot), payload

    def free_space_on(self, page_no: int) -> int:
        return self._free_map.get(page_no, 0)

    # -- persistence helpers ------------------------------------------------------------

    def state(self) -> dict:
        return {
            "name": self.name,
            "pages": list(self._pages),
            "free_pages": list(self._free_pages),
        }

    @classmethod
    def restore(cls, buffer: BufferManager, state: dict) -> "Segment":
        segment = cls(buffer, state["name"])
        segment._pages = list(state["pages"])
        segment._free_pages = list(state["free_pages"])
        for page_no in segment._pages:
            segment._free_map[page_no] = _usable_space(buffer, page_no)
        return segment


def _usable_space(buffer: BufferManager, page_no: int) -> int:
    page = buffer.fetch(page_no)
    try:
        return page.free_space
    finally:
        buffer.unpin(page_no)
