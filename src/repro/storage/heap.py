"""Heap files for flat (1NF) tables.

A flat table has no Mini Directory at all (Section 4.1: "a flat (1NF) table
does not have Mini Directories for its objects") — every tuple is one data
subtuple in a heap, addressed by its TID.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.model.schema import TableSchema
from repro.model.values import TupleValue
from repro.obs import METRICS
from repro.storage.segment import Segment
from repro.storage.subtuple import decode_data_subtuple, encode_data_subtuple
from repro.storage.tid import TID


class HeapFile:
    """Tuple storage for one flat table."""

    def __init__(self, segment: Segment, schema: TableSchema):
        if not schema.is_flat:
            raise ValueError(
                f"HeapFile stores 1NF tables only; {schema.name!r} is nested"
            )
        self._segment = segment
        self.schema = schema

    @property
    def segment(self) -> Segment:
        return self._segment

    def insert(self, value: TupleValue) -> TID:
        payload = encode_data_subtuple(self.schema.attributes, value.atomic_values())
        return self._segment.insert_record(payload)

    def fetch(self, tid: TID) -> TupleValue:
        if METRICS.enabled:
            METRICS.inc("storage.heap_fetches")
        payload = self._segment.read_record(tid)
        values = decode_data_subtuple(self.schema.attributes, payload)
        return TupleValue(
            self.schema,
            {attr.name: v for attr, v in zip(self.schema.attributes, values)},
        )

    def fetch_columns(self, tids: list[TID]) -> dict[str, list]:
        """One columnar batch: the attribute values of *tids* as parallel
        lists, in TID order.  Feeds the compiled executor's chunked flat
        scans (``Database.scan_chunks``); the per-row metric stays in step
        with :meth:`fetch` so A/B comparisons read the same counters."""
        if METRICS.enabled:
            METRICS.inc("storage.heap_fetches", len(tids))
        attributes = self.schema.attributes
        read = self._segment.read_record
        columns: dict[str, list] = {attr.name: [] for attr in attributes}
        appends = [columns[attr.name].append for attr in attributes]
        for tid in tids:
            values = decode_data_subtuple(attributes, read(tid))
            for append, value in zip(appends, values):
                append(value)
        return columns

    def update(self, tid: TID, value: TupleValue) -> None:
        payload = encode_data_subtuple(self.schema.attributes, value.atomic_values())
        self._segment.update_record(tid, payload)

    def delete(self, tid: TID) -> None:
        self._segment.delete_record(tid)

    def scan(self) -> Iterator[tuple[TID, TupleValue]]:
        for tid, payload in self._segment.scan():
            if METRICS.enabled:
                METRICS.inc("storage.heap_fetches")
            values = decode_data_subtuple(self.schema.attributes, payload)
            yield tid, TupleValue(
                self.schema,
                {attr.name: v for attr, v in zip(self.schema.attributes, values)},
            )

    def count(self) -> int:
        return sum(1 for _ in self._segment.scan())
