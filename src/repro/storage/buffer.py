"""Buffer manager: a fixed pool of page frames with LRU replacement.

The buffer manager is the metering point for the reproduction's cost model:
``stats.logical_reads`` counts page requests (the paper's "pages touched")
and ``stats.physical_reads`` / ``physical_writes`` count backend I/O.
Benchmarks reset the counters, run an operation, and report the deltas.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.concurrency.locks import Latch
from repro.errors import BufferError_, TornPageError
from repro.obs import METRICS, WAITS
from repro.storage.constants import PAGE_SIZE
from repro.storage.page import (
    Page,
    checksum_ok,
    clear_checksum,
    set_page_lsn,
    stamp_checksum,
)
from repro.storage.pagedfile import PagedFile


@dataclass
class BufferStats:
    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    evictions: int = 0
    #: distinct pages touched since the last reset (the clustering metric)
    pages_touched: set = field(default_factory=set)

    def reset(self) -> None:
        self.logical_reads = 0
        self.physical_reads = 0
        self.physical_writes = 0
        self.evictions = 0
        self.pages_touched = set()

    @property
    def hits(self) -> int:
        """Page requests served from the pool (no backend read)."""
        return self.logical_reads - self.physical_reads

    @property
    def hit_ratio(self) -> Optional[float]:
        """Fraction of page requests served from the pool, or ``None``
        before any request was made."""
        if self.logical_reads == 0:
            return None
        return self.hits / self.logical_reads

    def snapshot(self) -> dict:
        ratio = self.hit_ratio
        return {
            "logical_reads": self.logical_reads,
            "physical_reads": self.physical_reads,
            "physical_writes": self.physical_writes,
            "evictions": self.evictions,
            "distinct_pages": len(self.pages_touched),
            "hit_ratio": round(ratio, 4) if ratio is not None else None,
        }

    def delta(self, before: dict) -> dict:
        """Counter movement since a previous :meth:`snapshot`.

        ``hit_ratio`` is recomputed *for the window* (hits during the
        window over logical reads during the window); ``distinct_pages``
        is the growth of the cumulative distinct-page set.
        """
        current = self.snapshot()
        out = {
            key: current[key] - before.get(key, 0)
            for key in (
                "logical_reads",
                "physical_reads",
                "physical_writes",
                "evictions",
                "distinct_pages",
            )
        }
        logical = out["logical_reads"]
        hits = logical - out["physical_reads"]
        out["hit_ratio"] = round(hits / logical, 4) if logical else None
        return out


class _Frame:
    __slots__ = ("page_no", "buffer", "pin_count", "dirty")

    def __init__(self, page_no: int, buffer: bytearray):
        self.page_no = page_no
        self.buffer = buffer
        self.pin_count = 0
        self.dirty = False


class BufferManager:
    """LRU buffer pool over a :class:`~repro.storage.pagedfile.PagedFile`.

    When a :class:`~repro.wal.manager.WalManager` is attached the pool
    enforces the durability rules: **WAL-before-data** (the log is fsynced
    before any page write) and **no-steal** (pages with unlogged changes
    are never written or evicted — redo-only recovery needs no undo).
    With ``checksums=True`` every page written to the backend is stamped
    with a CRC32 and every page read back is verified, turning torn writes
    into :class:`~repro.errors.TornPageError` instead of silent corruption.
    """

    def __init__(
        self,
        file: PagedFile,
        capacity: int = 256,
        wal=None,
        checksums: bool = False,
    ):
        if capacity < 1:
            raise BufferError_("buffer capacity must be positive")
        self._file = file
        self._capacity = capacity
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        #: guards the frame map, pin counts, and eviction against
        #: concurrent sessions; never held while calling into the WAL
        #: except for the leaf-level ``ensure_durable``/``note_dirty``
        #: (whose own latch takes nothing else — no lock-order cycles)
        self._latch = Latch("buffer")
        self.stats = BufferStats()
        #: attached WAL manager (None = no durability enforcement)
        self.wal = wal
        #: stamp-on-write / verify-on-read page checksums
        self.checksums = checksums

    # -- page access -----------------------------------------------------------

    def fetch(self, page_no: int) -> Page:
        """Pin a page and return a :class:`Page` view onto its frame."""
        with self._latch:
            self.stats.logical_reads += 1
            self.stats.pages_touched.add(page_no)
            frame = self._frames.get(page_no)
            if frame is None:
                self._make_room()
                buffer = self._file.read_page(page_no)
                if self.checksums and not checksum_ok(buffer):
                    if METRICS.enabled:
                        METRICS.inc("buffer.torn_pages_detected")
                    raise TornPageError(
                        f"page {page_no} failed its checksum: torn write or "
                        "corruption (reopen the database to repair from the WAL)"
                    )
                self.stats.physical_reads += 1
                frame = _Frame(page_no, buffer)
                self._frames[page_no] = frame
                if METRICS.enabled:
                    METRICS.inc("buffer.logical_reads")
                    METRICS.inc("buffer.misses")
            else:
                self._frames.move_to_end(page_no)
                if METRICS.enabled:
                    METRICS.inc("buffer.logical_reads")
                    METRICS.inc("buffer.hits")
            frame.pin_count += 1
            return Page(frame.buffer)

    def unpin(self, page_no: int, dirty: bool = False) -> None:
        with self._latch:
            frame = self._frames.get(page_no)
            if frame is None or frame.pin_count == 0:
                raise BufferError_(f"page {page_no} is not pinned")
            frame.pin_count -= 1
            frame.dirty = frame.dirty or dirty
        if dirty and self.wal is not None:
            self.wal.note_dirty(page_no)

    @contextmanager
    def page(self, page_no: int, dirty: bool = False) -> Iterator[Page]:
        """``with buffer.page(n) as page: ...`` — fetch/unpin pairing.

        The dirty flag describes the caller's *intent*; if the body raises
        before actually changing the page, honouring it blindly would mark
        a never-written frame dirty — and with a WAL attached,
        ``note_dirty`` would pin that page into the protected (no-steal)
        set until the next commit logs an image of a page that never
        changed.  On the exception path the page content is therefore
        compared (CRC32 of the frame bytes) against its state on entry and
        the frame is only dirtied when a mutation really happened."""
        page = self.fetch(page_no)
        before = zlib.crc32(page.buffer) if dirty else None
        try:
            yield page
        except BaseException:
            changed = dirty and zlib.crc32(page.buffer) != before
            self.unpin(page_no, dirty=changed)
            raise
        else:
            self.unpin(page_no, dirty=dirty)

    def new_page(self) -> tuple[int, Page]:
        """Allocate, format, and pin a fresh page."""
        with self._latch:
            page_no = self._file.allocate_page()
            self._make_room()
            buffer = bytearray(PAGE_SIZE)
            frame = _Frame(page_no, buffer)
            frame.dirty = True
            self._frames[page_no] = frame
            frame.pin_count += 1
            self.stats.logical_reads += 1
            self.stats.pages_touched.add(page_no)
            if METRICS.enabled:
                METRICS.inc("buffer.logical_reads")
                METRICS.inc("buffer.pages_allocated")
            page = Page.format(frame.buffer)
        if self.wal is not None:
            self.wal.note_dirty(page_no)
        return page_no, page

    # -- maintenance -------------------------------------------------------------

    def flush_page(self, page_no: int) -> None:
        with self._latch:
            frame = self._frames.get(page_no)
            if frame is not None and frame.dirty:
                if self.wal is not None and page_no in self.wal.protected_pages:
                    raise BufferError_(
                        f"WAL-before-data violation: page {page_no} has "
                        "unlogged changes (commit or checkpoint first)"
                    )
                self._write_frame(frame)
                frame.dirty = False

    def _write_frame(self, frame: _Frame) -> None:
        """Write one frame to the backend honouring WAL-before-data and
        stamping (or clearing) the torn-write checksum."""
        if self.wal is not None:
            self.wal.ensure_durable()
        if self.checksums:
            stamp_checksum(frame.buffer)
        else:
            clear_checksum(frame.buffer)
        self._file.write_page(frame.page_no, bytes(frame.buffer))
        self.stats.physical_writes += 1
        METRICS.inc("buffer.physical_writes")

    def image_for_log(self, page_no: int, lsn: int) -> bytes:
        """The WAL's page-image hook: stamp *lsn* into the cached frame's
        header and return the page bytes to log.  Dirty pages are always
        cached (no-steal), but a clean page may have been evicted — then
        the backend's copy is already the current image."""
        with self._latch:
            frame = self._frames.get(page_no)
            if frame is None:
                return bytes(self._file.read_page(page_no))
            set_page_lsn(frame.buffer, lsn)
            return bytes(frame.buffer)

    def flush_all(self) -> None:
        for page_no in list(self._frames):
            self.flush_page(page_no)
        self._file.sync()

    def drop(self, page_no: int) -> None:
        """Forget a cached page without writing it (used when freeing
        pages)."""
        with self._latch:
            frame = self._frames.get(page_no)
            if frame is not None and frame.pin_count:
                raise BufferError_(f"cannot drop pinned page {page_no}")
            self._frames.pop(page_no, None)

    def invalidate(self, page_no: int) -> None:
        """Discard the cached copy of one page after its backend bytes
        were rewritten underneath the pool (replica apply redoes shipped
        page images straight into the file).  An unpinned frame is simply
        dropped; a pinned frame — the caller is expected to have excluded
        readers, but stay safe — is refreshed in place so existing
        :class:`~repro.storage.page.Page` views see the new bytes."""
        with self._latch:
            frame = self._frames.get(page_no)
            if frame is None:
                return
            if frame.pin_count == 0:
                self._frames.pop(page_no, None)
            else:  # pragma: no cover - apply holds X locks; defensive
                frame.buffer[:] = self._file.read_page(page_no)
                frame.dirty = False

    def invalidate_cache(self) -> None:
        """Empty the pool (flushing dirty frames) — lets benchmarks measure
        cold-cache physical I/O."""
        self.flush_all()
        with self._latch:
            for frame in self._frames.values():
                if frame.pin_count:
                    raise BufferError_("cannot invalidate with pinned pages")
            self._frames.clear()

    @property
    def pinned_pages(self) -> list[int]:
        with self._latch:
            return [n for n, f in self._frames.items() if f.pin_count > 0]

    # -- internal -------------------------------------------------------------------

    def _make_room(self) -> None:
        while len(self._frames) >= self._capacity:
            protected = (
                self.wal.protected_pages if self.wal is not None else ()
            )
            victim = None
            for page_no, frame in self._frames.items():
                if frame.pin_count == 0:
                    # no-steal: a dirty page whose changes are not yet in
                    # the log must stay cached until its commit logs it
                    if frame.dirty and page_no in protected:
                        continue
                    victim = page_no
                    break
            if victim is None:
                raise BufferError_(
                    "buffer pool exhausted: every frame pinned or "
                    "protected by an uncommitted transaction"
                )
            frame = self._frames.pop(victim)
            if frame.dirty:
                # making room by flushing someone else's dirty page is a
                # classic hidden stall — attribute it
                with WAITS.wait("Buffer/DirtyEvict", page=victim):
                    self._write_frame(frame)
            self.stats.evictions += 1
            METRICS.inc("buffer.evictions")
