"""Storage-engine constants."""

#: Size of a database page in bytes.
PAGE_SIZE = 4096

#: Bytes of the fixed page header (see :mod:`repro.storage.page`).
#: Layout: four u16 bookkeeping fields (slot count, free pointer, live
#: records, fragmented bytes), then a u32 pageLSN stamped by the WAL when a
#: page image is logged, then a u32 CRC32 checksum stamped when the page is
#: written to disk (0 = unstamped) used to detect torn writes.
PAGE_HEADER_SIZE = 16

#: Offset of the u32 pageLSN field inside the page header.
PAGE_LSN_OFFSET = 8

#: Offset of the u32 CRC32 checksum field inside the page header.
PAGE_CHECKSUM_OFFSET = 12

#: Bytes per slot-directory entry (u16 offset + u16 length).
SLOT_ENTRY_SIZE = 4

#: Encoded size of a full TID (u32 page number + u16 slot).
TID_SIZE = 6

#: Encoded size of a Mini TID (u16 local page index + u16 slot) — the paper:
#: "Mini TIDs can be somewhat smaller than TIDs".
MINI_TID_SIZE = 4

#: Largest record payload a page can hold (flag byte + one slot entry).
MAX_RECORD_SIZE = PAGE_SIZE - PAGE_HEADER_SIZE - SLOT_ENTRY_SIZE - 1

# Record flags (first byte of every stored record).
FLAG_NORMAL = 0      #: plain record
FLAG_FORWARD = 1     #: payload is a full TID of the relocated record
FLAG_LFORWARD = 2    #: payload is a Mini TID of the relocated record
FLAG_REMOTE = 3      #: relocated record body; skipped by heap scans
FLAG_CHAIN = 4       #: head of a multi-page record: u32 length + TID of part 1
FLAG_CHAIN_PART = 5  #: chain part: TID of next part (or NIL) + chunk bytes
FLAG_LCHAIN = 6      #: local chain head: u32 length + Mini TID of part 1
FLAG_LCHAIN_PART = 7 #: local chain part: Mini TID of next (or NIL) + chunk

#: per-part overhead of a chained record (next-part TID)
CHAIN_PART_HEADER = 6
#: largest chunk stored per chain part
CHAIN_CHUNK = MAX_RECORD_SIZE - CHAIN_PART_HEADER - 64
