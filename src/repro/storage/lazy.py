"""Lazily-decoded complex objects for the compiled executor.

The paper's structure/data separation (Section 4.1) stores an object's
shape in MD subtuples and its values in data subtuples.  ``OpenObject``
already decodes only the structure; :class:`LazyTupleValue` carries that
separation into the executor's value model: the root's first-level
atomics are read on the first atomic-attribute access (one data
subtuple), and each first-level subtable materializes on its first
access.  A query whose predicate was settled on index information alone
(Section 4.2) and whose projection touches only root atomics therefore
never decodes the object's nested data pages.

Only the compiled engine produces these (``Database._fetch(lazy=True)``);
the interpreted baseline keeps eager materialization so A/B runs stay
byte-identical in work as well as results.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DataError
from repro.model.values import TableValue, TupleValue


class LazyTupleValue(TupleValue):
    """A :class:`TupleValue` over an open complex object that decodes
    data subtuples on first access.

    Once an attribute is loaded it lives in ``_values`` like any eager
    tuple's; whole-value operations (``to_plain``, ``canonical``,
    ``replace``, equality, hashing) force full materialization first.
    """

    __slots__ = ("_obj", "_atoms_loaded")

    def __init__(self, obj: Any):
        # deliberately NOT calling TupleValue.__init__ — there is nothing
        # to validate yet; values fill in as data subtuples decode
        self.schema = obj.schema
        self._values = {}
        self._obj = obj
        self._atoms_loaded = False

    # -- lazy loading --------------------------------------------------------

    def _ensure_atoms(self) -> None:
        if not self._atoms_loaded:
            obj = self._obj
            self._values.update(obj.read_atoms(self.schema, obj.decoded))
            self._atoms_loaded = True

    def _materialize_subtable(self, index: int) -> TableValue:
        obj = self._obj
        attr = self.schema.table_attributes[index]
        assert attr.table is not None
        subtable = obj.decoded.subtables[index]
        inner = TableValue(attr.table)
        rows = inner.rows
        for child in subtable.elements:
            rows.append(obj.materialize_element(attr.table, child))
        self._values[attr.name] = inner
        return inner

    def _force(self) -> None:
        """Materialize everything (whole-value operations need it)."""
        self._ensure_atoms()
        values = self._values
        for index, attr in enumerate(self.schema.table_attributes):
            if attr.name not in values:
                self._materialize_subtable(index)

    # -- TupleValue API ------------------------------------------------------

    def __getitem__(self, name: str) -> Any:
        values = self._values
        if name in values:
            return values[name]
        schema = self.schema
        if not schema.has_attribute(name):
            raise DataError(
                f"tuple of {schema.name!r} has no attribute {name!r}"
            )
        if schema.attribute(name).is_atomic:
            self._ensure_atoms()
            return self._values[name]
        for index, attr in enumerate(schema.table_attributes):
            if attr.name == name:
                return self._materialize_subtable(index)
        raise DataError(  # pragma: no cover - has_attribute rules this out
            f"tuple of {schema.name!r} has no attribute {name!r}"
        )

    def get(self, name: str, default: Any = None) -> Any:
        if self.schema.has_attribute(name):
            return self[name]
        return default

    def atomic_values(self) -> tuple:
        self._ensure_atoms()
        return super().atomic_values()

    def replace(self, **updates: Any) -> TupleValue:
        self._force()
        return super().replace(**updates)

    def to_plain(self) -> dict[str, Any]:
        self._force()
        return super().to_plain()

    def canonical(self) -> tuple:
        self._force()
        return super().canonical()

    def __repr__(self) -> str:
        self._force()
        return super().__repr__()
