"""Raw page stores.

A paged file knows nothing about records: it reads, writes, and allocates
fixed-size pages.  Two backends are provided — an in-memory store (the
default for tests and benchmarks) and a real on-disk file.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from repro.errors import SegmentError, StorageError
from repro.obs.waits import WAITS
from repro.storage.constants import PAGE_SIZE


class PagedFile:
    """Abstract page store."""

    def read_page(self, page_no: int) -> bytearray:
        raise NotImplementedError

    def write_page(self, page_no: int, data: bytes) -> None:
        raise NotImplementedError

    def allocate_page(self) -> int:
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def sync(self) -> None:
        """Flush to durable storage (no-op for the memory backend)."""

    def close(self) -> None:
        """Release resources."""


class MemoryPagedFile(PagedFile):
    """Pages held in RAM — fast and inspectable."""

    def __init__(self) -> None:
        self._pages: list[bytearray] = []
        # serializes allocation against reads/writes (thread safety)
        self._latch = threading.RLock()

    def read_page(self, page_no: int) -> bytearray:
        with self._latch:
            self._check(page_no)
            return bytearray(self._pages[page_no])

    def write_page(self, page_no: int, data: bytes) -> None:
        with self._latch:
            self._check(page_no)
            if len(data) != PAGE_SIZE:
                raise StorageError("page write must be exactly one page")
            self._pages[page_no] = bytearray(data)

    def allocate_page(self) -> int:
        with self._latch:
            self._pages.append(bytearray(PAGE_SIZE))
            return len(self._pages) - 1

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def _check(self, page_no: int) -> None:
        if not 0 <= page_no < len(self._pages):
            raise SegmentError(f"page {page_no} not allocated")


class DiskPagedFile(PagedFile):
    """Pages stored in a real file, one page per PAGE_SIZE-aligned extent."""

    def __init__(self, path: str, create: bool = True):
        mode = "r+b"
        if not os.path.exists(path):
            if not create:
                raise StorageError(f"database file {path!r} does not exist")
            with open(path, "wb"):
                pass
        self._file = open(path, mode)
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE:
            raise StorageError(f"file {path!r} is not page-aligned")
        self._page_count = size // PAGE_SIZE
        self.path = path
        # one shared file handle: seek+read / seek+write pairs and the
        # allocation counter must not interleave across threads
        self._latch = threading.RLock()

    def read_page(self, page_no: int) -> bytearray:
        # real device I/O is a wait event: the in-memory backend stays
        # uninstrumented, this one attributes its seek+read time
        token = WAITS.enter("IO/PageRead", page=page_no)
        try:
            with self._latch:
                self._check(page_no)
                self._file.seek(page_no * PAGE_SIZE)
                data = self._file.read(PAGE_SIZE)
        finally:
            WAITS.exit(token)
        if len(data) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_no}")
        return bytearray(data)

    def write_page(self, page_no: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise StorageError("page write must be exactly one page")
        token = WAITS.enter("IO/PageWrite", page=page_no)
        try:
            with self._latch:
                self._check(page_no)
                self._file.seek(page_no * PAGE_SIZE)
                self._file.write(data)
        finally:
            WAITS.exit(token)

    def allocate_page(self) -> int:
        with self._latch:
            page_no = self._page_count
            self._file.seek(page_no * PAGE_SIZE)
            self._file.write(b"\x00" * PAGE_SIZE)
            self._page_count += 1
            return page_no

    @property
    def page_count(self) -> int:
        return self._page_count

    def sync(self) -> None:
        with self._latch:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        # Durability: cached writes must reach the medium before the
        # handle goes away — close() used to drop straight to close(),
        # losing OS-buffered pages on a post-close power failure.
        with self._latch:
            if not self._file.closed:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._file.close()

    def _check(self, page_no: int) -> None:
        if not 0 <= page_no < self._page_count:
            raise SegmentError(f"page {page_no} not allocated")
