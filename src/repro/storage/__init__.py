"""The from-scratch storage engine of the AIM-II reproduction.

Layering (bottom-up):

* :mod:`repro.storage.pagedfile` — raw page store (memory or disk backed);
* :mod:`repro.storage.buffer` — buffer manager with LRU replacement and
  logical/physical I/O counters;
* :mod:`repro.storage.page` — slotted pages with stable slot numbers and
  record forwarding;
* :mod:`repro.storage.segment` — page allocation + record-level operations
  addressed by TIDs;
* :mod:`repro.storage.heap` — heap files for flat (1NF) tables;
* :mod:`repro.storage.subtuple` — byte codecs for data and MD subtuples;
* :mod:`repro.storage.address_space` — a complex object's local address
  space (page list + Mini TIDs);
* :mod:`repro.storage.minidirectory` — the SS1 / SS2 / SS3 Mini Directory
  layouts;
* :mod:`repro.storage.complex_object` — store / load / navigate / update
  complex objects.
"""

from repro.storage.tid import TID, MiniTID
from repro.storage.pagedfile import MemoryPagedFile, DiskPagedFile
from repro.storage.buffer import BufferManager, BufferStats
from repro.storage.segment import Segment
from repro.storage.heap import HeapFile
from repro.storage.minidirectory import StorageStructure, get_codec
from repro.storage.complex_object import ComplexObjectManager

__all__ = [
    "TID",
    "MiniTID",
    "MemoryPagedFile",
    "DiskPagedFile",
    "BufferManager",
    "BufferStats",
    "Segment",
    "HeapFile",
    "StorageStructure",
    "get_codec",
    "ComplexObjectManager",
]
