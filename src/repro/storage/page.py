"""Slotted pages.

Layout (bookkeeping integers big-endian u16, durability fields u32)::

    0..2   slot_count          entries in the slot directory
    2..4   free_ptr            end of the used data region
    4..6   live_records        records currently stored
    6..8   fragmented_bytes    reclaimable space inside the data region
    8..12  page_lsn            LSN of the newest WAL record covering this page
    12..16 checksum            CRC32 of the page (0 = unstamped), set on flush
    16..free_ptr               record data (flag byte + payload each)
    ...                        free space
    end-4*slot_count..end      slot directory, growing backwards

Slot-directory entry ``i`` lives at ``PAGE_SIZE - 4*(i+1)`` and holds
``(offset, length)`` of its record; ``offset == 0`` marks a free slot.  Slot
numbers are *stable*: deleting a record frees its entry for reuse but never
renumbers others — the invariant TIDs and Mini TIDs rely on.

Records carry a one-byte flag (see :mod:`repro.storage.constants`) used for
forwarding when an update outgrows its page.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Optional, Union

from repro.errors import PageFullError, RecordNotFoundError, RecordTooLargeError, StorageError
from repro.storage.constants import (
    FLAG_NORMAL,
    MAX_RECORD_SIZE,
    PAGE_CHECKSUM_OFFSET,
    PAGE_HEADER_SIZE,
    PAGE_LSN_OFFSET,
    PAGE_SIZE,
    SLOT_ENTRY_SIZE,
)

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Durability helpers (pageLSN + torn-write checksum)
# ---------------------------------------------------------------------------


def compute_checksum(buffer: Union[bytes, bytearray, memoryview]) -> int:
    """CRC32 over the whole page, excluding the checksum field itself.

    Never returns 0 — a stored checksum of 0 means "page was written by a
    path that does not stamp checksums, skip verification" (this keeps old
    page files readable and lets checksums be ablated)."""
    crc = zlib.crc32(bytes(buffer[:PAGE_CHECKSUM_OFFSET]))
    crc = zlib.crc32(bytes(buffer[PAGE_CHECKSUM_OFFSET + 4:]), crc)
    crc &= 0xFFFFFFFF
    return crc or 1


def stamp_checksum(buffer: bytearray) -> int:
    """Compute and store the page checksum; returns the stamped value."""
    crc = compute_checksum(buffer)
    _U32.pack_into(buffer, PAGE_CHECKSUM_OFFSET, crc)
    return crc


def clear_checksum(buffer: bytearray) -> None:
    """Mark the page as unstamped (checksum verification will skip it)."""
    _U32.pack_into(buffer, PAGE_CHECKSUM_OFFSET, 0)


def stored_checksum(buffer: Union[bytes, bytearray]) -> int:
    return _U32.unpack_from(buffer, PAGE_CHECKSUM_OFFSET)[0]


def checksum_ok(buffer: Union[bytes, bytearray]) -> bool:
    """True when the page has no stamped checksum or the stamp matches."""
    stored = stored_checksum(buffer)
    return stored == 0 or stored == compute_checksum(buffer)


def get_page_lsn(buffer: Union[bytes, bytearray]) -> int:
    return _U32.unpack_from(buffer, PAGE_LSN_OFFSET)[0]


def set_page_lsn(buffer: bytearray, lsn: int) -> None:
    """Stamp the pageLSN (truncated to u32; the WAL is checkpoint-truncated
    long before offsets approach 4 GiB)."""
    _U32.pack_into(buffer, PAGE_LSN_OFFSET, lsn & 0xFFFFFFFF)


class Page:
    """A slotted page over a ``bytearray`` buffer.

    The class is a view: it never copies the buffer, so mutations are seen
    by the buffer manager's frame directly.
    """

    __slots__ = ("buffer",)

    def __init__(self, buffer: bytearray):
        if len(buffer) != PAGE_SIZE:
            raise StorageError(f"page buffer must be {PAGE_SIZE} bytes")
        self.buffer = buffer

    @classmethod
    def format(cls, buffer: Optional[bytearray] = None) -> "Page":
        """Initialize an empty page."""
        if buffer is None:
            buffer = bytearray(PAGE_SIZE)
        page = cls(buffer)
        page._set_slot_count(0)
        page._set_free_ptr(PAGE_HEADER_SIZE)
        page._set_live_records(0)
        page._set_fragmented(0)
        set_page_lsn(buffer, 0)
        clear_checksum(buffer)
        return page

    @property
    def page_lsn(self) -> int:
        """LSN of the newest WAL record that logged this page's image."""
        return get_page_lsn(self.buffer)

    # -- header accessors ---------------------------------------------------

    def _get_u16(self, offset: int) -> int:
        return _U16.unpack_from(self.buffer, offset)[0]

    def _set_u16(self, offset: int, value: int) -> None:
        _U16.pack_into(self.buffer, offset, value)

    @property
    def slot_count(self) -> int:
        return self._get_u16(0)

    def _set_slot_count(self, value: int) -> None:
        self._set_u16(0, value)

    @property
    def _free_ptr(self) -> int:
        return self._get_u16(2)

    def _set_free_ptr(self, value: int) -> None:
        self._set_u16(2, value)

    @property
    def live_records(self) -> int:
        return self._get_u16(4)

    def _set_live_records(self, value: int) -> None:
        self._set_u16(4, value)

    @property
    def _fragmented(self) -> int:
        return self._get_u16(6)

    def _set_fragmented(self, value: int) -> None:
        self._set_u16(6, value)

    # -- slot directory -------------------------------------------------------

    def _slot_position(self, slot: int) -> int:
        return PAGE_SIZE - SLOT_ENTRY_SIZE * (slot + 1)

    def _slot_entry(self, slot: int) -> tuple[int, int]:
        if slot >= self.slot_count or slot < 0:
            raise RecordNotFoundError(f"slot {slot} out of range")
        position = self._slot_position(slot)
        return self._get_u16(position), self._get_u16(position + 2)

    def _set_slot_entry(self, slot: int, offset: int, length: int) -> None:
        position = self._slot_position(slot)
        self._set_u16(position, offset)
        self._set_u16(position + 2, length)

    def _find_free_slot(self) -> Optional[int]:
        for slot in range(self.slot_count):
            offset, _length = self._get_u16(self._slot_position(slot)), 0
            if offset == 0:
                return slot
        return None

    # -- space accounting ------------------------------------------------------

    @property
    def contiguous_free(self) -> int:
        return PAGE_SIZE - SLOT_ENTRY_SIZE * self.slot_count - self._free_ptr

    @property
    def free_space(self) -> int:
        """Total reclaimable free bytes (after a compaction)."""
        return self.contiguous_free + self._fragmented

    def can_insert(self, payload_length: int) -> bool:
        needed = payload_length + 1  # flag byte
        if self._find_free_slot() is None:
            needed += SLOT_ENTRY_SIZE
        return self.free_space >= needed

    # -- record operations -------------------------------------------------------

    def insert(self, payload: bytes, flag: int = FLAG_NORMAL) -> int:
        """Insert a record; returns its (stable) slot number."""
        record_length = len(payload) + 1
        if record_length > MAX_RECORD_SIZE + 1:
            raise RecordTooLargeError(
                f"record of {len(payload)} bytes exceeds page capacity"
            )
        free_slot = self._find_free_slot()
        needed = record_length + (0 if free_slot is not None else SLOT_ENTRY_SIZE)
        if self.free_space < needed:
            raise PageFullError("page cannot hold this record")
        if self.contiguous_free < needed:
            self._compact()
        if free_slot is None:
            free_slot = self.slot_count
            self._set_slot_count(free_slot + 1)
        offset = self._free_ptr
        self.buffer[offset] = flag
        self.buffer[offset + 1:offset + record_length] = payload
        self._set_free_ptr(offset + record_length)
        self._set_slot_entry(free_slot, offset, record_length)
        self._set_live_records(self.live_records + 1)
        return free_slot

    def read(self, slot: int) -> tuple[int, bytes]:
        """Read a record: returns (flag, payload)."""
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} is empty")
        flag = self.buffer[offset]
        return flag, bytes(self.buffer[offset + 1:offset + length])

    def update(self, slot: int, payload: bytes, flag: Optional[int] = None) -> None:
        """Replace a record in place, keeping its slot number.

        Raises :class:`PageFullError` if the page cannot hold the new
        payload even after compaction (the caller then relocates the record
        and leaves a forward stub).
        """
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} is empty")
        if flag is None:
            flag = self.buffer[offset]
        new_length = len(payload) + 1
        if new_length <= length:
            self.buffer[offset] = flag
            self.buffer[offset + 1:offset + 1 + len(payload)] = payload
            if new_length < length:
                self._set_fragmented(self._fragmented + (length - new_length))
                self._set_slot_entry(slot, offset, new_length)
            return
        # Record grows: free old space, place the new record at the end.
        growth = new_length - length
        if self.contiguous_free + self._fragmented < growth:
            raise PageFullError("updated record does not fit in this page")
        self._set_fragmented(self._fragmented + length)
        self._set_slot_entry(slot, 0, 0)  # temporarily free, survives compaction
        if self.contiguous_free < new_length:
            self._compact()
        offset = self._free_ptr
        self.buffer[offset] = flag
        self.buffer[offset + 1:offset + new_length] = payload
        self._set_free_ptr(offset + new_length)
        self._set_slot_entry(slot, offset, new_length)

    def delete(self, slot: int) -> None:
        offset, length = self._slot_entry(slot)
        if offset == 0:
            raise RecordNotFoundError(f"slot {slot} is already empty")
        self._set_slot_entry(slot, 0, 0)
        self._set_fragmented(self._fragmented + length)
        self._set_live_records(self.live_records - 1)
        # Shrink the slot directory if trailing slots are free.
        count = self.slot_count
        while count > 0:
            if self._get_u16(self._slot_position(count - 1)) != 0:
                break
            count -= 1
        self._set_slot_count(count)

    def slots(self) -> Iterator[tuple[int, int, bytes]]:
        """Iterate live records as (slot, flag, payload)."""
        for slot in range(self.slot_count):
            offset, length = self._slot_entry(slot)
            if offset == 0:
                continue
            flag = self.buffer[offset]
            yield slot, flag, bytes(self.buffer[offset + 1:offset + length])

    # -- internal ------------------------------------------------------------------

    def _compact(self) -> None:
        """Rewrite the data region to squeeze out fragmentation.

        Slot numbers (and therefore TIDs) are unaffected; only record
        offsets move.
        """
        records = []
        for slot in range(self.slot_count):
            offset, length = self._slot_entry(slot)
            if offset != 0:
                records.append((slot, bytes(self.buffer[offset:offset + length])))
        write_ptr = PAGE_HEADER_SIZE
        for slot, data in records:
            self.buffer[write_ptr:write_ptr + len(data)] = data
            self._set_slot_entry(slot, write_ptr, len(data))
            write_ptr += len(data)
        self._set_free_ptr(write_ptr)
        self._set_fragmented(0)
