"""Render a stored complex object's Mini Directory as ASCII, in the
spirit of Fig 6/7/8 of the paper.

MD subtuples are drawn as ``[MD ...]`` boxes (the paper's rectangles),
data subtuples as ``(...)`` ovals, with the D/C pointer structure shown by
indentation.
"""

from __future__ import annotations

from repro.model.schema import TableSchema
from repro.storage.complex_object import ComplexObjectManager, OpenObject
from repro.storage.minidirectory import DecodedElement
from repro.storage.tid import TID


def _data_text(obj: OpenObject, schema: TableSchema, element: DecodedElement) -> str:
    atoms = obj.read_atoms(schema, element)
    rendered = " ".join(str(v) for v in atoms.values())
    return f"({rendered})  @ {element.data}"


def render_mini_directory(
    manager: ComplexObjectManager, root_tid: TID, schema: TableSchema
) -> str:
    """The whole object's MD tree + data subtuples, one line per node."""
    obj = manager.open(root_tid, schema)
    lines: list[str] = []
    lines.append(
        f"[ROOT MD @ {root_tid}]  structure={manager.structure.value}  "
        f"pages={obj.space.page_list}"
    )

    def render_element(
        schema: TableSchema, element: DecodedElement, indent: str, label: str
    ) -> None:
        if element.md is not None:
            lines.append(f"{indent}[MD {label} @ {element.md}]")
            indent += "  "
        lines.append(f"{indent}D-> {_data_text(obj, schema, element)}")
        for attr, subtable in zip(schema.table_attributes, element.subtables):
            assert attr.table is not None
            if subtable.md is not None:
                lines.append(
                    f"{indent}C-> [MD subtable {attr.name} @ {subtable.md}]"
                )
                child_indent = indent + "  "
            else:
                lines.append(f"{indent}subtable {attr.name} (no MD subtuple)")
                child_indent = indent + "  "
            for position, child in enumerate(subtable.elements):
                render_element(
                    attr.table, child, child_indent, f"{attr.name}[{position}]"
                )

    render_element(schema, obj.decoded, "  ", schema.name)
    return "\n".join(lines)


def md_statistics_row(manager: ComplexObjectManager, root_tid: TID, schema: TableSchema) -> str:
    stats = manager.statistics(root_tid, schema)
    return (
        f"{stats['structure']}: {stats['md_subtuples']} MD subtuples, "
        f"{stats['md_bytes']} MD bytes, {stats['data_subtuples']} data "
        f"subtuples, {stats['data_bytes']} data bytes, {stats['pages']} pages"
    )
